//! The flit-level Quarc network model.
//!
//! Implements the paper's §2.2–§2.5 architecture:
//!
//! * **all-port router** — four local ingress queues (one per quadrant) feed
//!   four dedicated injection paths, so a message blocks only when *its*
//!   quadrant's resources are busy;
//! * **doubled cross links** — cross-right and cross-left are independent
//!   physical channels;
//! * **absorb-and-forward** — broadcast/multicast flits are cloned at the
//!   ingress multiplexer: the local copy and the forwarded flit move in the
//!   same cycle, or not at all;
//! * **no routing logic in the switch** — every per-hop decision is
//!   [`quarc_route`]: "local or straight on";
//! * **two VCs per link** with the dateline discipline for deadlock freedom;
//! * **wormhole switching** with credit-based flow control (the paper's
//!   `CH_STATUS_N` back-pressure) and one flit per physical link per cycle.
//!
//! The per-cycle schedule is a deterministic two-phase update: link arrivals,
//! then injection, then a read-only arbitration pass over every router, then
//! a commit pass that moves at most one flit per input port and per output
//! port. Router arbitration mirrors the paper's hardware: a per-input VC
//! arbiter picks the requesting lane (§2.3.2), then a per-output round-robin
//! grants one requester (the OPC master FSM, §2.3.3).
//!
//! ## Active-set scheduling
//!
//! Per-cycle cost is proportional to **live traffic**, not to `n` (see
//! `crates/sim/HOTPATH.md` for the invariants): link arrivals walk a
//! live-link worklist, arbitration walks a sorted worklist of routers that a
//! tracked event (arrival, injection, commit, credit return, stall window)
//! could have made grantable, and workload polling pops a per-node due-cycle
//! heap fed by [`Workload::next_due`]. Router state is structure-of-arrays:
//! one network-wide [`LaneBufs`], flat route/ownership slabs, and
//! [`RoundRobinBank`]/[`LinkBank`] pointer slabs, all indexed by
//! `node * ports + port`.

use crate::arbiter::{ArbPolicy, RoundRobinBank};
use crate::buffer::LaneBufs;
use crate::driver::{NocSim, StallDiagnostics};
use crate::fault::FaultState;
use crate::link::{LinkBank, TaggedFlit};
use crate::metrics::Metrics;
use crate::packets::{ack_meta, quarc_expand_into, IdAlloc, PacketQueue};
use crate::probe::{CounterSample, FlitEventKind, Phase, SimProbe};
use crate::recovery::{DataDelivery, RecoveryAction, RecoveryState};
use quarc_core::bits::Bits;
use quarc_core::config::{NocConfig, MAX_VCS};
use quarc_core::flit::{PacketMeta, PacketTable, TrafficClass};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::ring::RingDir;
use quarc_core::routing::{quarc_injection_out, quarc_route, RouteAction};
use quarc_core::topology::{QuarcIn, QuarcOut, QuarcTopology, TopologyKind};
use quarc_core::vc::{vc_after_rim_hop, vc_for_cross_hop, INJECTION_VC};
use quarc_engine::{Clock, Cycle};
use quarc_workloads::{MessageRequest, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Network input ports in index order (matches `QuarcIn::index()` 0..4).
const NET_IN: [QuarcIn; 4] =
    [QuarcIn::RimCw, QuarcIn::RimCcw, QuarcIn::CrossRight, QuarcIn::CrossLeft];
/// Network output ports in index order (matches `QuarcOut::index()` 0..4).
const NET_OUT: [QuarcOut; 4] =
    [QuarcOut::RimCw, QuarcOut::RimCcw, QuarcOut::CrossRight, QuarcOut::CrossLeft];

/// [`QuarcTopology::feeders`] per network output, pre-resolved to the
/// request-slot indices `gather_node` uses (net inputs 0..4, local quadrant
/// queues 4..8) — pinned to the topology tables by a test.
const OUT_FEEDER_SLOTS: [&[usize]; 4] = [&[0, 2, 4], &[1, 3, 7], &[5], &[6]];

/// A flit source within one router: a network input VC lane or a local
/// quadrant queue. Byte-sized fields: ownership words are replicated per
/// output lane per node, so the whole router state must stay cache-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Network input `port` (0..4), VC lane `vc`.
    Net {
        /// Input port index.
        port: u8,
        /// VC lane index.
        vc: u8,
    },
    /// Local ingress queue of quadrant `quad` (0..4).
    Local {
        /// Quadrant index.
        quad: u8,
    },
}

/// The resolved per-hop plan for the packet currently at the head of a lane
/// (4 bytes; cached per lane for the whole worm).
#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// Local PE takes a copy.
    deliver: bool,
    /// Continue on this network output (None = pure absorption or drop).
    out: Option<u8>,
    /// VC on the outgoing link.
    out_vc: VcId,
    /// The forward was suppressed by a fault: drain the packet's flits
    /// without transmitting (the local copy, if any, still delivers). Set
    /// only at header-plan time, so a fault never tears a worm mid-packet.
    dropped: bool,
    /// The local copy is a duplicate at an already-served receiver
    /// (recovery only): drain it without recording, but still re-ack the
    /// tail. Decided at the header's *commit* (a header that loses
    /// arbitration re-plans, so gather must stay read-only) and cached
    /// with the rest of the plan for the worm's body and tail.
    dup: bool,
}

/// One input port's request for this cycle.
#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

/// Planned flit movement, computed in the read-only phase.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

/// A scheduled transient link fault: the link refuses all traffic while
/// `from ≤ now < until` (models a stalled downstream consumer or a link-level
/// retransmission window; flow control must absorb it without loss).
#[derive(Debug, Clone, Copy)]
struct LinkStall {
    from: Cycle,
    until: Cycle,
}

/// The flit-level Quarc network simulator.
///
/// All per-router state lives in network-owned structure-of-arrays slabs
/// (flat `node * ports + port` indexing); the "router" is purely a loop
/// index. See the module docs for the active-set scheduling scheme.
#[derive(Debug)]
pub struct QuarcNetwork {
    topo: QuarcTopology,
    cfg: NocConfig,
    clock: Clock,
    /// Per-quadrant injection queues, `node * 4 + quad`, holding whole
    /// packets (flits materialise on pop). Unbounded: the paper keeps
    /// packets in PE RAM and queues only addresses (§3.1).
    inject_q: Box<[PacketQueue]>,
    /// Outgoing VC of the packet streaming from local port `node * 4 + quad`.
    inject_vc: Box<[Option<VcId>]>,
    /// Whether the packet streaming from local port `node * 4 + quad` is
    /// being drained by a fault drop (the local twin of the `dropped` bit
    /// cached in `in_route` for network lanes).
    inject_drop: Box<[bool]>,
    /// Input buffers, one bank for the whole network; lane
    /// `(node * 4 + port) * vcs + vc`.
    in_buf: LaneBufs,
    /// Ingress-mux state per input lane (same indexing as `in_buf`), set by
    /// the header.
    in_route: Box<[Option<HopPlan>]>,
    /// Wormhole ownership per output lane `(node * 4 + out) * vcs + vc`.
    out_owner: Box<[Option<Src>]>,
    /// VC arbiter per network input port (`node * 4 + port`).
    rr_in_vc: RoundRobinBank,
    /// OPC grant arbiter per network output port (`node * 4 + out`).
    rr_out: RoundRobinBank,
    /// Directed links indexed by `node * 4 + out`.
    links: LinkBank,
    ids: IdAlloc,
    metrics: Metrics,
    /// Interned metadata of every in-flight packet (see [`PacketTable`]).
    packets: PacketTable,
    /// Scratch reused across cycles to avoid per-cycle allocation.
    transfers: Vec<Transfer>,
    /// Scratch for workload polling, reused across every poll of the run.
    poll_buf: Vec<MessageRequest>,
    /// Flits carried per link since construction (observability).
    link_flits: Vec<u64>,
    /// Scheduled transient stalls per link (failure injection).
    stalls: Vec<Option<LinkStall>>,
    /// Whether any stall was ever scheduled — lets the per-lane credit
    /// check skip the stall-window read entirely in ordinary runs.
    has_stalls: bool,
    /// Realised fault schedule from [`NocConfig::fault`] (dead/lossy/
    /// transient links, frozen routers). Empty plans cost one predictable
    /// branch per site.
    fault: FaultState,
    /// End-to-end ack/timeout/retransmit engine from
    /// [`NocConfig::recovery`]. Disabled policies cost one predictable
    /// branch per hook site and mutate nothing.
    recovery: RecoveryState,
    /// Scratch for retransmission target sets (cold path, reused).
    retry_targets: Vec<NodeId>,
    /// Precomputed `link_target` per `node * 4 + out`: the downstream node
    /// and input-port index.
    targets: Vec<(u32, u8)>,
    /// Sender-side credit counters per `(node * 4 + out) * vcs + vc`: an
    /// exact mirror of `depth − buffered_downstream − in_flight_on_link`,
    /// decremented on send and returned when the downstream router pops the
    /// flit. Turns the per-lane credit check into one local array read.
    credits: Vec<u32>,
    /// Link id feeding network input `node * 4 + in_port` (inverse of
    /// `targets`), for returning credits on buffer pops.
    feeder: Vec<u32>,
    /// Membership flag of `active_nodes` (one per node). A node whose router
    /// produced no grant last cycle can only become grantable through a
    /// tracked event — a link arrival, an injection, a commit at the node, or
    /// a credit returned to it — each of which re-marks it. Skipping a
    /// quiescent node is exactly behaviour-preserving: with no feasible
    /// request, `gather_node` would move nothing and advance no arbiter.
    node_active: Vec<bool>,
    /// Routers-with-work worklist (unsorted accumulation; sorted into
    /// canonical ascending order each cycle before arbitration).
    active_nodes: Vec<u32>,
    /// Per-cycle scratch the worklist is sorted into.
    node_worklist: Vec<u32>,
    /// Nodes with a scheduled link stall re-arbitrate every cycle: stall
    /// windows open and close with time, which the event tracking above does
    /// not see.
    stalled_nodes: Vec<u32>,
    /// Membership flag of `live_links` (one per link).
    link_live: Vec<bool>,
    /// Links-with-flits worklist. Iterated in insertion order, which is
    /// deterministic and behaviour-neutral: each link feeds a distinct set
    /// of input lanes, so arrival order across links cannot affect state.
    live_links: Vec<u32>,
    /// Sources-with-upcoming-work: min-heap of `(due cycle, node)` fed by
    /// [`Workload::next_due`]. Nodes pop in ascending node order within a
    /// cycle (all due entries carry the current cycle), preserving the
    /// canonical poll order of the old full scan.
    poll_heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Test oracle: disable every worklist and scan all links/nodes/sources
    /// each cycle. Set at construction time only (see
    /// [`QuarcNetwork::set_full_scan`]).
    full_scan: bool,
    /// Flits queued in source (quadrant) injection queues — counter twin of
    /// walking every `inject_q`, kept so `backlog()` is O(1).
    inject_backlog: usize,
    /// Flits buffered in network input VC lanes (counter twin of walking
    /// every `in_buf`), for O(1) `quiesced()`.
    buffered_flits: u64,
    /// Flits in flight on links, for O(1) `quiesced()`.
    link_occupancy: u64,
    /// Instrumentation (off by default; observe, never mutate).
    probe: SimProbe,
}

impl QuarcNetwork {
    /// Build a network from a validated configuration. The output-arbitration
    /// policy comes from [`NocConfig::arb`] (round-robin by default, the
    /// paper's behaviour); it is part of the config so experiment grids can
    /// sweep it and cache keys can include it.
    pub fn new(cfg: NocConfig) -> Self {
        let policy = cfg.arb;
        assert_eq!(cfg.kind, TopologyKind::Quarc, "config is not a Quarc network");
        cfg.validate().expect("invalid configuration");
        Self::build(cfg, policy)
    }

    /// Build with an explicit output-arbitration policy (equivalent to
    /// setting [`NocConfig::arb`] before [`QuarcNetwork::new`]).
    pub fn with_arb_policy(cfg: NocConfig, policy: ArbPolicy) -> Self {
        Self::new(cfg.with_arb(policy))
    }

    fn build(cfg: NocConfig, policy: ArbPolicy) -> Self {
        let topo = QuarcTopology::new(cfg.n);
        let n = cfg.n;
        let targets: Vec<(u32, u8)> = (0..n * 4)
            .map(|i| {
                let (to, tin) =
                    topo.link_target(NodeId::new(i / 4), NET_OUT[i % 4]).expect("network output");
                (to.index() as u32, tin.index() as u8)
            })
            .collect();
        let mut feeder = vec![u32::MAX; n * 4];
        for (lid, &(to, tin)) in targets.iter().enumerate() {
            feeder[to as usize * 4 + tin as usize] = lid as u32;
        }
        assert!(feeder.iter().all(|&f| f != u32::MAX), "every input port has a feeder");
        QuarcNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            inject_q: (0..n * 4).map(|_| PacketQueue::new()).collect(),
            inject_vc: vec![None; n * 4].into_boxed_slice(),
            inject_drop: vec![false; n * 4].into_boxed_slice(),
            in_buf: LaneBufs::new(n * 4 * cfg.vcs, cfg.buffer_depth),
            in_route: vec![None; n * 4 * cfg.vcs].into_boxed_slice(),
            out_owner: vec![None; n * 4 * cfg.vcs].into_boxed_slice(),
            rr_in_vc: RoundRobinBank::new(n * 4, ArbPolicy::RoundRobin),
            rr_out: RoundRobinBank::new(n * 4, policy),
            links: LinkBank::new(n * 4, cfg.link_latency),
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            // A Quarc branch bitstring never exceeds quarter-depth + 1 bits;
            // for n <= 64 every bitstring stays inline (no slab rows).
            packets: PacketTable::with_bit_capacity(topo.ring().quarter() + 2),
            transfers: Vec::new(),
            poll_buf: Vec::new(),
            link_flits: vec![0; n * 4],
            stalls: vec![None; n * 4],
            has_stalls: false,
            fault: FaultState::new(&cfg.fault, n, n * 4, |lid| lid / 4, |_| true),
            recovery: RecoveryState::new(cfg.recovery, n),
            retry_targets: Vec::new(),
            credits: vec![cfg.buffer_depth as u32; n * 4 * cfg.vcs],
            feeder,
            targets,
            node_active: vec![true; n],
            active_nodes: (0..n as u32).collect(),
            node_worklist: Vec::new(),
            stalled_nodes: Vec::new(),
            link_live: vec![false; n * 4],
            live_links: Vec::new(),
            poll_heap: (0..n as u32).map(|node| Reverse((0, node))).collect(),
            full_scan: false,
            inject_backlog: 0,
            buffered_flits: 0,
            link_occupancy: 0,
            probe: SimProbe::new(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Test oracle: disable the active-set worklists and scan every link,
    /// router and source each cycle (the naive reference the lockstep
    /// proptests step against). Call before the first `step`.
    pub fn set_full_scan(&mut self, on: bool) {
        assert_eq!(self.clock.now(), 0, "full-scan mode is a construction-time choice");
        self.full_scan = on;
    }

    /// Mark `node`'s router as possibly grantable next arbitration pass.
    #[inline]
    fn mark_node(&mut self, node: usize) {
        if !self.node_active[node] {
            self.node_active[node] = true;
            self.active_nodes.push(node as u32);
        }
    }

    /// The VC used on the first hop out of `node` through `out`.
    fn injection_vc(&self, node: usize, out: QuarcOut) -> VcId {
        match out {
            QuarcOut::RimCw => {
                vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Cw, INJECTION_VC)
            }
            QuarcOut::RimCcw => {
                vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Ccw, INJECTION_VC)
            }
            QuarcOut::CrossRight | QuarcOut::CrossLeft => vc_for_cross_hop(),
            QuarcOut::Eject => unreachable!("injection never targets eject"),
        }
    }

    /// The VC used when forwarding from `node` through `out`, arriving on
    /// VC `cur`.
    fn forward_vc(&self, node: usize, out: QuarcOut, cur: VcId) -> VcId {
        match out {
            QuarcOut::RimCw => {
                vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Cw, cur)
            }
            QuarcOut::RimCcw => {
                vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Ccw, cur)
            }
            QuarcOut::CrossRight | QuarcOut::CrossLeft => vc_for_cross_hop(),
            QuarcOut::Eject => unreachable!("forwarding never targets eject"),
        }
    }

    /// Free space (in flits) on the far side of `(node, out)` for `vc`,
    /// accounting for flits still in flight on the link and for injected
    /// transient stalls. One read of the sender-side credit counter.
    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        let lid = node * 4 + out;
        if self.has_stalls {
            if let Some(s) = self.stalls[lid] {
                let now = self.clock.now();
                if now >= s.from && now < s.until {
                    return 0;
                }
            }
        }
        if self.fault.any() && self.fault.link_blocked(lid, self.clock.now()) {
            return 0;
        }
        self.credits[lid * self.cfg.vcs + vc.index()] as usize
    }

    /// Schedule a transient fault on the link leaving `node` through `out`:
    /// it refuses every flit while `from ≤ now < until`. Credit-based flow
    /// control must absorb the stall with zero loss — asserted by the
    /// fault-injection tests.
    pub fn inject_link_stall(&mut self, node: NodeId, out: QuarcOut, from: Cycle, until: Cycle) {
        assert!(out != QuarcOut::Eject, "eject is not a link");
        assert!(from < until);
        self.stalls[node.index() * 4 + out.index()] = Some(LinkStall { from, until });
        self.has_stalls = true;
        // Stall windows change feasibility purely with time; keep this
        // node's router re-arbitrating unconditionally.
        if !self.stalled_nodes.contains(&(node.index() as u32)) {
            self.stalled_nodes.push(node.index() as u32);
        }
    }

    /// Flits carried so far by the link leaving `node` through `out`.
    pub fn link_flits(&self, node: NodeId, out: QuarcOut) -> u64 {
        self.link_flits[node.index() * 4 + out.index()]
    }

    /// Mean utilisation (flits per cycle) of every rim link vs every cross
    /// link — the balance the topology was designed for.
    pub fn utilisation_by_kind(&self) -> (f64, f64) {
        let cycles = self.clock.now().max(1) as f64;
        let n = self.cfg.n as f64;
        let mut rim = 0u64;
        let mut cross = 0u64;
        for node in 0..self.cfg.n {
            rim += self.link_flits[node * 4] + self.link_flits[node * 4 + 1];
            cross += self.link_flits[node * 4 + 2] + self.link_flits[node * 4 + 3];
        }
        (rim as f64 / (2.0 * n * cycles), cross as f64 / (2.0 * n * cycles))
    }

    /// The number of receivers a packet at `node` (headed by `src`) would
    /// still have served strictly downstream of `node`, had its forward not
    /// been fault-dropped. Computed by replaying the remaining route on a
    /// copy of the meta — exact for every class by construction, and cold:
    /// it runs once per dropped packet.
    fn receivers_beyond(&self, node: usize, src: Src, meta: &PacketMeta) -> usize {
        // Replay on a meta copy whose bitstring is synthesised inline, one
        // bit at a time, from a read-only offset (`bit_at`) into the
        // packet's (possibly slab-backed) bitstring: the live row is shared
        // with the packet and must not be shifted by this accounting.
        let bits = meta.bitstring;
        let mut shift = 0usize;
        let (mut meta, mut out, mut advance) = match src {
            Src::Net { port, .. } => {
                let action =
                    quarc_route(self.topo.ring(), NodeId::new(node), NET_IN[port as usize], meta);
                let out = match action {
                    RouteAction::Forward(o) | RouteAction::DeliverAndForward(o) => o,
                    RouteAction::Deliver => unreachable!("pure absorptions are never dropped"),
                };
                // Forwarding from a net lane shifts the bitstring (see
                // `commit`); injections forward the meta unchanged.
                (*meta, out, true)
            }
            Src::Local { quad } => (
                *meta,
                quarc_injection_out(quarc_core::quadrant::Quadrant::ALL[quad as usize]),
                false,
            ),
        };
        let mut node = node;
        let mut count = 0usize;
        loop {
            if advance && meta.class == TrafficClass::Multicast {
                shift += 1;
                meta.bitstring = Bits::inline(u64::from(self.packets.bits().bit_at(bits, shift)));
            }
            advance = true;
            let (to, tin) = self.targets[node * 4 + out.index()];
            let to = to as usize;
            match quarc_route(self.topo.ring(), NodeId::new(to), NET_IN[tin as usize], &meta) {
                RouteAction::Deliver => return count + 1,
                RouteAction::Forward(o) => {
                    node = to;
                    out = o;
                }
                RouteAction::DeliverAndForward(o) => {
                    count += 1;
                    node = to;
                    out = o;
                }
            }
        }
    }

    /// Whether `src` may move a flit to `(out, vc)` under wormhole ownership.
    fn ownership_allows(
        &self,
        node: usize,
        out: usize,
        vc: VcId,
        src: Src,
        is_header: bool,
    ) -> bool {
        match self.out_owner[(node * 4 + out) * self.cfg.vcs + vc.index()] {
            Some(owner) => owner == src && !is_header,
            None => is_header,
        }
    }

    /// Build the request (if any) of network input port `p` at `node`.
    /// Read-only; the VC arbiter pointer is advanced optimistically.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        let base = (node * 4 + p) * vcs;
        // Collect feasibility per VC lane first (immutably). Fixed-size
        // scratch: this runs per active router per cycle and must not
        // allocate.
        let mut feasible: [Option<PortReq>; MAX_VCS] = [None; MAX_VCS];
        for vc in 0..vcs {
            let Some(head) = self.in_buf.front(base + vc).copied() else {
                continue;
            };
            let plan = match self.in_route[base + vc] {
                Some(plan) => {
                    debug_assert!(!head.is_header(), "route state present at header");
                    plan
                }
                None => {
                    assert!(
                        head.is_header(),
                        "wormhole violated: non-header {head} without route state"
                    );
                    let meta = self.packets.meta(head.packet);
                    let action = quarc_route(self.topo.ring(), NodeId::new(node), NET_IN[p], meta);
                    let planned = match action {
                        RouteAction::Deliver => HopPlan {
                            deliver: true,
                            out: None,
                            out_vc: INJECTION_VC,
                            dropped: false,
                            dup: false,
                        },
                        RouteAction::Forward(out) => HopPlan {
                            deliver: false,
                            out: Some(out.index() as u8),
                            out_vc: self.forward_vc(node, out, VcId(vc as u8)),
                            dropped: false,
                            dup: false,
                        },
                        RouteAction::DeliverAndForward(out) => HopPlan {
                            deliver: true,
                            out: Some(out.index() as u8),
                            out_vc: self.forward_vc(node, out, VcId(vc as u8)),
                            dropped: false,
                            dup: false,
                        },
                    };
                    match planned.out {
                        // Fail-stop at packet granularity: a faulted link
                        // suppresses the forward at header-plan time. The
                        // decision is pure in (link, packet) plus the onset
                        // gate, and the plan is cached in `in_route` at the
                        // header's commit, so the worm is never torn.
                        Some(o)
                            if self.fault.drops_packet(
                                node * 4 + o as usize,
                                meta.packet,
                                self.clock.now(),
                            ) =>
                        {
                            HopPlan {
                                deliver: planned.deliver,
                                out: None,
                                out_vc: INJECTION_VC,
                                dropped: true,
                                dup: false,
                            }
                        }
                        _ => planned,
                    }
                }
            };
            let src = Src::Net { port: p as u8, vc: vc as u8 };
            let ok = match plan.out {
                None => true, // pure absorption: the all-port PE always sinks
                Some(o) => {
                    self.ownership_allows(node, o as usize, plan.out_vc, src, head.is_header()) && {
                        let free = self.downstream_free(node, o as usize, plan.out_vc) > 0;
                        // Probe-only: a lane head whose granted-path check
                        // fails purely on credits is a credit stall.
                        if !free && self.probe.counters_on() {
                            self.probe.note_credit_stall();
                        }
                        free
                    }
                }
            };
            if ok {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.rr_in_vc.pick(node * 4 + p, vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    /// Build the request (if any) of local quadrant queue `quad` at `node`.
    fn gather_local_port(&self, node: usize, quad: usize) -> Option<PortReq> {
        let head = self.inject_q[node * 4 + quad].front()?;
        let src = Src::Local { quad: quad as u8 };
        let drop_plan =
            HopPlan { deliver: false, out: None, out_vc: INJECTION_VC, dropped: true, dup: false };
        // Continuation of a packet whose injection link fault-dropped its
        // header: keep draining the queue without transmitting.
        if self.inject_drop[node * 4 + quad] {
            debug_assert!(!head.is_header());
            return Some(PortReq {
                src,
                plan: drop_plan,
                is_header: false,
                is_tail: head.is_tail(),
            });
        }
        let out = quarc_injection_out(quarc_core::quadrant::Quadrant::ALL[quad]);
        let o = out.index();
        let out_vc = match self.inject_vc[node * 4 + quad] {
            Some(vc) => {
                debug_assert!(!head.is_header());
                vc
            }
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                // Fail-stop at the source: a fresh packet whose injection
                // link is faulted never enters the network (decision cached
                // in `inject_drop` at the header's commit).
                if self.fault.drops_packet(
                    node * 4 + o,
                    self.packets.meta(head.packet).packet,
                    self.clock.now(),
                ) {
                    return Some(PortReq {
                        src,
                        plan: drop_plan,
                        is_header: true,
                        is_tail: head.is_tail(),
                    });
                }
                self.injection_vc(node, out)
            }
        };
        let ok = self.ownership_allows(node, o, out_vc, src, head.is_header())
            && self.downstream_free(node, o, out_vc) > 0;
        ok.then_some(PortReq {
            src,
            plan: HopPlan {
                deliver: false,
                out: Some(o as u8),
                out_vc,
                dropped: false,
                dup: false,
            },
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    /// Read-only arbitration over one router; appends winning transfers.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        // A frozen router grants nothing: no forwarding, no absorption, no
        // local injection. Returning before any arbiter is consulted keeps
        // full-scan and active-set state identical (the node simply stops
        // producing grants and falls out of the active set).
        if self.fault.node_frozen(node, self.clock.now()) {
            return;
        }
        // Phase 1: each input port (VC arbiter) elects at most one request.
        let mut reqs: [Option<PortReq>; 8] = [None; 8];
        for p in 0..4 {
            reqs[p] = self.gather_net_port(node, p);
        }
        for quad in 0..4 {
            reqs[4 + quad] = self.gather_local_port(node, quad);
        }

        // Phase 2: per-output grant (OPC master FSM). Feeder candidate lists
        // are the topology's static tables (pre-resolved to request slots in
        // [`OUT_FEEDER_SLOTS`]), so the arbiter state has a fixed,
        // hardware-like domain.
        for (o, feeders) in OUT_FEEDER_SLOTS.iter().enumerate() {
            let winner = self.rr_out.pick(
                node * 4 + o,
                feeders.len(),
                |k| matches!(reqs[feeders[k]], Some(r) if r.plan.out == Some(o as u8)),
            );
            if let Some(k) = winner {
                let req = reqs[feeders[k]].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }

        // Pure absorptions (Deliver with no forward) proceed unconditionally:
        // the all-port router absorbs on every input in parallel (§2.2 (iii)).
        for req in reqs.iter().flatten() {
            if req.plan.out.is_none() {
                transfers.push(Transfer { node, req: *req });
            }
        }
    }

    /// Apply one planned transfer.
    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let vcs = self.cfg.vcs;
        // Any commit mutates this router's lane/ownership/credit state.
        self.mark_node(node);
        // Pop the flit from its source and update per-packet lane state.
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let (port, vc) = (port as usize, vc as usize);
                let lane = (node * 4 + port) * vcs + vc;
                let flit = self.in_buf.pop(lane).expect("planned flit");
                self.buffered_flits -= 1;
                // The freed slot becomes a credit at the upstream sender,
                // which may unblock its router.
                let feeder = self.feeder[node * 4 + port] as usize;
                self.credits[feeder * vcs + vc] += 1;
                self.mark_node(feeder / 4);
                if t.req.is_header {
                    self.in_route[lane] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.in_route[lane] = None;
                }
                flit
            }
            Src::Local { quad } => {
                let q = node * 4 + quad as usize;
                let flit = self.inject_q[q].pop().expect("planned flit");
                self.inject_backlog -= 1;
                if t.req.is_header {
                    self.inject_vc[q] = Some(t.req.plan.out_vc);
                    self.inject_drop[q] = t.req.plan.dropped;
                }
                if t.req.is_tail {
                    self.inject_vc[q] = None;
                    self.inject_drop[q] = false;
                }
                flit
            }
        };

        // Fault drop: the forward this plan would have made is suppressed.
        // Every flit is accounted; the header additionally writes off the
        // receivers the suppressed forward would have served, so the message
        // ledger still balances (`expected == delivered + lost`) and drain
        // loops terminate.
        if t.req.plan.dropped {
            let meta = *self.packets.meta(flit.packet);
            self.metrics.record_flit_drop(meta.class);
            // Dropped ACKs are pure control loss: the data source's timeout
            // covers them. Data drops write off their unreached receivers —
            // unless recovery is on, in which case every loss is deferred to
            // the retry window (the exhaust pump is the sole write-off site,
            // so a drop racing the final deadline can never double-count).
            if t.req.is_header && meta.class != TrafficClass::Ack {
                let lost = if self.recovery.enabled() {
                    0
                } else {
                    self.receivers_beyond(node, t.req.src, &meta)
                };
                self.metrics.record_lost_receivers(meta.message, lost);
                if self.probe.trace_on() {
                    self.probe.trace(
                        FlitEventKind::Drop,
                        now,
                        meta.message.0,
                        meta.class,
                        node as u32,
                        lost as u32,
                    );
                }
            }
        }

        // Local copy (absorption or ingress-mux clone). The delivery site is
        // the input lane: only network lanes ever deliver (local plans are
        // forward-only), and a lane streams one packet at a time.
        if t.req.plan.deliver {
            let Src::Net { port, vc } = t.req.src else {
                unreachable!("local injection queues never deliver")
            };
            let lane = (node * 4 + port as usize) * vcs + vc as usize;
            let site = (node * 4 + port as usize) * MAX_VCS + vc as usize;
            let meta = *self.packets.meta(flit.packet);
            if meta.class == TrafficClass::Ack {
                // ACK absorbed at the data source: a control packet, never a
                // tracked delivery (the data message may already be completed
                // and its slot recycled). First ack per receiver closes its
                // pending bit and samples the round trip; duplicates drain.
                let fresh = self.recovery.on_ack(meta.message, meta.src, now);
                if let Some(created_at) = fresh {
                    self.metrics.record_ack_delivery(now, created_at);
                }
                if self.probe.trace_on() {
                    self.probe.trace(
                        FlitEventKind::Ack,
                        now,
                        meta.message.0,
                        meta.class,
                        meta.src.index() as u32,
                        fresh.is_some() as u32,
                    );
                }
            } else {
                let mut dup = false;
                if self.recovery.enabled() {
                    if t.req.is_header {
                        // Commit-time dup decision (gather is read-only
                        // arbitration); the verdict rides the cached plan so
                        // the worm's body and tail agree with its header.
                        match self.recovery.on_data_header(meta.message, NodeId::new(node)) {
                            DataDelivery::Fresh { recovered } => {
                                if recovered {
                                    self.metrics.note_recovered_receiver();
                                }
                            }
                            DataDelivery::Dup => {
                                dup = true;
                                if let Some(plan) = self.in_route[lane].as_mut() {
                                    plan.dup = true;
                                }
                            }
                        }
                    } else {
                        dup = t.req.plan.dup;
                    }
                }
                if dup {
                    self.metrics.note_dup_flit();
                } else {
                    self.metrics.record_flit_delivery(now, NodeId::new(node), site, &flit, &meta);
                    if self.probe.trace_on() {
                        let (msg, class) = (meta.message.0, meta.class);
                        if let (true, Some(out)) = (flit.is_header(), t.req.plan.out) {
                            // Ingress-mux clone: the local copy and the
                            // forwarded flit move in the same cycle (§2.2
                            // absorb-and-forward).
                            self.probe.trace(
                                FlitEventKind::Clone,
                                now,
                                msg,
                                class,
                                node as u32,
                                out as u32,
                            );
                        }
                        if flit.is_tail() {
                            self.probe.trace(
                                FlitEventKind::Deliver,
                                now,
                                msg,
                                class,
                                node as u32,
                                0,
                            );
                        }
                    }
                }
                // Every tail reception acks — fresh or duplicate: a
                // duplicate's re-ack may be the one that finally closes the
                // window when the original ack was itself dropped.
                if self.recovery.enabled() && flit.is_tail() {
                    self.emit_ack(node, &meta, now);
                }
            }
        }

        // Forwarding.
        if let Some(o) = t.req.plan.out.map(usize::from) {
            let vc = t.req.plan.out_vc;
            let lid = node * 4 + o;
            if t.req.is_header {
                self.out_owner[lid * vcs + vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.out_owner[lid * vcs + vc.index()] = None;
            }
            // Routers (not sources) shift multicast bitstrings hop by hop.
            // Only headers are routed, so shifting the interned meta in place
            // is equivalent to the old per-flit copy-and-shift.
            if flit.is_header() && matches!(t.req.src, Src::Net { .. }) {
                self.packets.advance_header(flit.packet);
            }
            if flit.is_header() && self.probe.trace_on() {
                let m = self.packets.meta(flit.packet);
                let (msg, class) = (m.message.0, m.class);
                self.probe.trace(FlitEventKind::Hop, now, msg, class, node as u32, o as u32);
            }
            self.link_flits[lid] += 1;
            self.link_occupancy += 1;
            self.credits[lid * vcs + vc.index()] -= 1;
            let idx = self.links.slot_index(now);
            self.links.send(lid, idx, TaggedFlit { flit, vc });
            if !self.link_live[lid] {
                self.link_live[lid] = true;
                self.live_links.push(lid as u32);
            }
        } else if t.req.is_tail {
            // Pure absorption of the tail: wormhole in-order delivery means
            // no flit of this packet exists anywhere any more — retire it.
            self.packets.release(flit.packet);
        }
    }

    /// Deliver the flit arriving on link `lid` this cycle (if any) into the
    /// downstream input lane.
    #[inline]
    fn arrive_link(&mut self, lid: usize, slot_index: usize) {
        if let Some(tf) = self.links.arrive(lid, slot_index) {
            let (to, tin) = self.targets[lid];
            let lane = (to as usize * 4 + tin as usize) * self.cfg.vcs + tf.vc.index();
            self.in_buf.push(lane, tf.flit);
            self.link_occupancy -= 1;
            self.buffered_flits += 1;
            self.mark_node(to as usize);
        }
    }

    /// Poll one source and expand whatever it produced into injection
    /// queues. Returns via side effects; `reqs` is the reusable scratch.
    fn poll_node<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        node: usize,
        now: Cycle,
        reqs: &mut Vec<MessageRequest>,
    ) {
        reqs.clear();
        workload.poll_into(NodeId::new(node), now, reqs);
        for req in reqs.drain(..) {
            debug_assert_eq!(req.src, NodeId::new(node), "workload src mismatch");
            let message = self.metrics.create_message(req.class, now);
            let queues: &mut [PacketQueue; 4] = (&mut self.inject_q[node * 4..node * 4 + 4])
                .try_into()
                .expect("four quadrant queues per node");
            let (expected, flits) = quarc_expand_into(
                self.topo.ring(),
                &req,
                message,
                &mut self.ids,
                now,
                &mut self.packets,
                queues,
            );
            self.inject_backlog += flits;
            self.mark_node(node);
            self.metrics.set_expected(message, expected);
            if self.recovery.enabled() {
                self.recovery.on_send(message, &req, now, expected);
            }
            // Probe-only: the Inject event carries the expected reception
            // count so the trace stream is self-contained for conservation
            // checks.
            self.probe.trace(
                FlitEventKind::Inject,
                now,
                message.0,
                req.class,
                node as u32,
                expected as u32,
            );
        }
    }

    /// Enqueue the single-flit ACK a receiver emits on absorbing a data
    /// tail: a control unicast back to the data source, injected through
    /// the quadrant queue that routes `node → meta.src` — the same
    /// contended path as any application packet.
    fn emit_ack(&mut self, node: usize, meta: &PacketMeta, now: Cycle) {
        let packet = self.ids.packet();
        let pm = ack_meta(meta.message, NodeId::new(node), meta.src, packet, now);
        let quad = quarc_core::quadrant::quadrant_of(self.topo.ring(), pm.src, pm.dst);
        let pref = self.packets.insert(pm);
        let flits = self.inject_q[node * 4 + quad.index()].push_packet(pref, 1);
        self.inject_backlog += flits;
        self.mark_node(node);
    }

    /// Drain the recovery timer heap: re-inject each due message to its
    /// unacked receiver subset, or write off the never-served receivers of
    /// a retry-exhausted window. Runs in step phase (b) right after the
    /// workload polls, so retransmissions enter the same injection path as
    /// fresh traffic in a deterministic order.
    fn pump_recovery(&mut self, now: Cycle) {
        let mut targets = std::mem::take(&mut self.retry_targets);
        while let Some(action) = self.recovery.pop_action(now, &mut targets) {
            match action {
                RecoveryAction::Retry { message, src, class, len, attempt: _ } => {
                    // Re-expand under the *original* message id (no
                    // create_message / set_expected: the ledger entry is the
                    // original's) narrowed to the unacked subset; collective
                    // classes retransmit as a multicast over that subset.
                    let req = if class == TrafficClass::Unicast {
                        MessageRequest::unicast(src, targets[0], len as usize)
                    } else {
                        MessageRequest::multicast(src, targets.clone(), len as usize)
                    };
                    let node = src.index();
                    let queues: &mut [PacketQueue; 4] = (&mut self.inject_q
                        [node * 4..node * 4 + 4])
                        .try_into()
                        .expect("four quadrant queues per node");
                    let (_, flits) = quarc_expand_into(
                        self.topo.ring(),
                        &req,
                        message,
                        &mut self.ids,
                        now,
                        &mut self.packets,
                        queues,
                    );
                    self.inject_backlog += flits;
                    self.mark_node(node);
                    self.metrics.note_retransmission();
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Retry,
                            now,
                            message.0,
                            class,
                            node as u32,
                            targets.len() as u32,
                        );
                    }
                }
                RecoveryAction::Exhaust { message, src, class, lost } => {
                    if lost > 0 {
                        self.metrics.record_lost_receivers(message, lost);
                    }
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Expire,
                            now,
                            message.0,
                            class,
                            src.index() as u32,
                            lost as u32,
                        );
                    }
                }
            }
        }
        self.retry_targets = targets;
    }

    /// Advance one cycle, polling `workload` for new messages. Monomorphized
    /// per workload type — the enum-dispatched run loop in
    /// [`crate::driver`] calls this directly; [`NocSim::step`] is the
    /// object-safe facade.
    pub fn step_cycle<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        let now = self.clock.now();
        // Phase profiler: the mark is taken and lapped purely for
        // observation — wall time never feeds back into simulated behaviour.
        let mut mark = if self.probe.begin_profiled_cycle(now) {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let arrivals_walked = if mark.is_some() {
            if self.full_scan {
                self.cfg.n * 4
            } else {
                self.live_links.len()
            }
        } else {
            0
        };

        // (a) Link arrivals from last cycle — only links carrying flits.
        let slot = self.links.slot_index(now);
        if self.full_scan {
            for lid in 0..self.cfg.n * 4 {
                self.arrive_link(lid, slot);
            }
            // Keep the (unused) live set empty so sends cannot grow it
            // without bound.
            let mut live = std::mem::take(&mut self.live_links);
            for &lid in &live {
                self.link_live[lid as usize] = false;
            }
            live.clear();
            self.live_links = live;
        } else {
            let mut live = std::mem::take(&mut self.live_links);
            live.retain(|&lid| {
                self.arrive_link(lid as usize, slot);
                let still = !self.links.is_empty(lid as usize);
                if !still {
                    self.link_live[lid as usize] = false;
                }
                still
            });
            debug_assert!(self.live_links.is_empty(), "no sends happen during arrivals");
            self.live_links = live;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Arrivals, m, arrivals_walked);
        }

        // (b) New messages from due sources (scratch buffer reused across
        // the whole run — no per-cycle allocation).
        let mut polled = 0usize;
        let mut reqs = std::mem::take(&mut self.poll_buf);
        if self.full_scan {
            polled = self.cfg.n;
            for node in 0..self.cfg.n {
                self.poll_node(workload, node, now, &mut reqs);
            }
        } else {
            while self.poll_heap.peek().is_some_and(|&Reverse((due, _))| due <= now) {
                let Reverse((due, node)) = self.poll_heap.pop().expect("peeked");
                debug_assert!(due == now, "due cycles never pass unpolled");
                polled += 1;
                self.poll_node(workload, node as usize, now, &mut reqs);
                let next = workload.next_due(NodeId::new(node as usize), now).max(now + 1);
                self.poll_heap.push(Reverse((next, node)));
            }
        }
        self.poll_buf = reqs;
        // Recovery deadlines: retransmissions and write-offs join phase (b)
        // as extra injections (one predictable branch when disabled).
        if self.recovery.enabled() {
            self.pump_recovery(now);
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Polls, m, polled);
        }

        // (c) Read-only arbitration over the routers-with-work worklist, in
        // canonical ascending order (metric accumulation order depends on
        // it), skipping routers that cannot have become grantable since they
        // last produced no grant.
        for i in 0..self.stalled_nodes.len() {
            let node = self.stalled_nodes[i] as usize;
            self.mark_node(node);
        }
        // Fault watch list: sources of faulted links re-arbitrate every
        // cycle, for the same reason as stall windows — their feasibility
        // changes with time, which event tracking does not see.
        if self.fault.any() {
            for i in 0..self.fault.watch_nodes().len() {
                let node = self.fault.watch_nodes()[i] as usize;
                self.mark_node(node);
            }
        }
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        let gather_walked;
        if self.full_scan {
            let mut marks = std::mem::take(&mut self.active_nodes);
            for &node in &marks {
                self.node_active[node as usize] = false;
            }
            marks.clear();
            self.active_nodes = marks;
            gather_walked = self.cfg.n;
            for node in 0..self.cfg.n {
                self.gather_node(node, &mut transfers);
            }
        } else {
            let mut worklist = std::mem::take(&mut self.node_worklist);
            debug_assert!(worklist.is_empty());
            std::mem::swap(&mut worklist, &mut self.active_nodes);
            worklist.sort_unstable();
            gather_walked = worklist.len();
            for &node in &worklist {
                self.node_active[node as usize] = false;
                self.gather_node(node as usize, &mut transfers);
            }
            worklist.clear();
            self.node_worklist = worklist;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Gather, m, gather_walked);
        }

        // (d) Commit.
        let committed = transfers.len();
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Commit, m, committed);
        }

        if self.probe.counters_due(now) {
            let sample = CounterSample {
                cycle: now,
                backlog: self.inject_backlog as u64,
                buffered: self.buffered_flits,
                on_links: self.link_occupancy,
                live_packets: self.packets.live() as u64,
                live_links: self.live_links.len() as u64,
                active_routers: self.active_nodes.len() as u64,
                poll_sources: self.poll_heap.len() as u64,
                in_flight: self.metrics.in_flight() as u64,
                completed: self.metrics.completed_total(),
                delivered: self.metrics.flits_delivered(),
                dropped: self.metrics.flits_dropped(),
                credit_stalls: self.probe.credit_stalls(),
            };
            self.probe.push_sample(sample);
        }

        self.clock.tick();
    }

    /// Total flits queued at source transceivers (injection backlog). O(1).
    pub fn backlog(&self) -> usize {
        self.inject_backlog
    }

    /// Packets currently interned (in flight end to end). Observability for
    /// tests of the packet-table recycling.
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }
}

impl NocSim for QuarcNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        self.step_cycle(workload);
    }

    fn note_workload_change(&mut self) {
        let now = self.clock.now();
        self.poll_heap.clear();
        for node in 0..self.cfg.n as u32 {
            self.poll_heap.push(Reverse((now, node)));
        }
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Quarc
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn probe(&self) -> &SimProbe {
        &self.probe
    }

    fn probe_mut(&mut self) -> &mut SimProbe {
        &mut self.probe
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.link_flits.iter().sum()
    }

    fn quiesced(&self) -> bool {
        // All terms are counters — drain loops poll this every cycle, so it
        // must not walk nodes × ports × VCs. An empty network with an open
        // recovery window is not done: a deadline will still fire.
        self.metrics.in_flight() == 0
            && self.inject_backlog == 0
            && self.link_occupancy == 0
            && self.buffered_flits == 0
            && self.recovery.pending() == 0
    }

    fn recovery_pending(&self) -> u64 {
        self.recovery.pending()
    }

    fn stall_diagnostics(&self) -> StallDiagnostics {
        let vcs = self.cfg.vcs;
        let mut busiest: Vec<(u32, u32)> = (0..self.cfg.n)
            .map(|node| {
                let mut flits = 0usize;
                for lane in node * 4 * vcs..(node + 1) * 4 * vcs {
                    flits += self.in_buf.len(lane);
                }
                for quad in 0..4 {
                    flits += self.inject_q[node * 4 + quad].flits();
                }
                (node as u32, flits as u32)
            })
            .filter(|&(_, flits)| flits > 0)
            .collect();
        busiest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        busiest.truncate(StallDiagnostics::TOP_ROUTERS);
        StallDiagnostics {
            backlog: self.inject_backlog as u64,
            buffered: self.buffered_flits,
            on_links: self.link_occupancy,
            in_flight: self.metrics.in_flight() as u64,
            live_packets: self.packets.live() as u64,
            fault: self.cfg.fault.to_string(),
            busiest_routers: busiest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;
    use quarc_core::quadrant::unicast_hops;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    /// Drive a network until quiescent (with a hard cycle cap).
    fn run_until_quiet(net: &mut QuarcNetwork, workload: &mut dyn Workload, cap: u64) {
        for _ in 0..cap {
            net.step(workload);
            if net.quiesced() {
                return;
            }
        }
        panic!("network did not quiesce within {cap} cycles");
    }

    fn one_shot(n: usize, records: Vec<TraceRecord>) -> (QuarcNetwork, TraceWorkload) {
        let net = QuarcNetwork::new(NocConfig::quarc(n));
        let wl = TraceWorkload::new(n, records);
        (net, wl)
    }

    #[test]
    fn single_unicast_arrives_with_ideal_latency() {
        // One 8-flit unicast over d hops with empty network: latency is
        // d (header pipeline) + (M − 1) (serialisation) + 1 (injection cycle).
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        let m = net.metrics();
        assert_eq!(m.unicast_latency().count(), 1);
        let d = unicast_hops(&QuarcTopology::new(16).ring().clone(), NodeId(0), NodeId(3)) as f64;
        let ideal = d + 7.0 + 1.0;
        let got = m.unicast_latency().mean();
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs ideal {ideal} (d = {d})");
    }

    #[test]
    fn cross_unicast_uses_one_hop() {
        // Antipodal message: 1 cross hop.
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(2), NodeId(10), 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 100);
        let got = net.metrics().unicast_latency().mean();
        assert!((got - 5.0).abs() <= 1.0, "latency {got}");
    }

    #[test]
    fn broadcast_reaches_all_nodes_exactly_once() {
        for n in [8usize, 16, 32] {
            let (mut net, mut wl) = one_shot(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(1), 4) }],
            );
            run_until_quiet(&mut net, &mut wl, 500);
            let m = net.metrics();
            // Metrics enforce exactly-once internally; completion implies all
            // n−1 receptions happened.
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
            assert_eq!(m.broadcast_reception_latency().count() as usize, n - 1);
        }
    }

    #[test]
    fn broadcast_completion_is_near_quarter_plus_serialisation() {
        // Fig. 6 semantics: the slowest branch travels n/4 hops; with M = 8
        // flits completion ≈ 1 + n/4 + (M − 1).
        let n = 16;
        let (mut net, mut wl) = one_shot(
            n,
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 8) }],
        );
        run_until_quiet(&mut net, &mut wl, 500);
        let got = net.metrics().broadcast_completion_latency().mean();
        let ideal = 1.0 + (n as f64 / 4.0) + 7.0;
        assert!((got - ideal).abs() <= 2.0, "completion {got} vs ideal {ideal}");
    }

    #[test]
    fn multicast_delivers_to_targets_only() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(
                    NodeId(0),
                    vec![NodeId(2), NodeId(7), NodeId(8), NodeId(12)],
                    4,
                ),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 500);
        let m = net.metrics();
        assert_eq!(m.completed(TrafficClass::Multicast), 1);
        // 4 targets → 4 tail deliveries → 4 × 4 flits delivered.
        assert_eq!(m.flits_delivered(), 16);
    }

    #[test]
    fn deterministic_runs_are_identical() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = || {
            let mut net = QuarcNetwork::new(NocConfig::quarc(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.05, 8, 0.1, 42));
            for _ in 0..2000 {
                net.step(&mut wl);
            }
            (
                net.metrics().flits_delivered(),
                net.metrics().unicast_latency().count(),
                net.metrics().unicast_latency().mean(),
                net.metrics().broadcast_completion_latency().mean(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sustained_uniform_load_delivers_everything() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = QuarcNetwork::new(NocConfig::quarc(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.05, 7));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        // Stop injecting, drain.
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..5_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "network failed to drain (possible deadlock)");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
        assert!(m.created(TrafficClass::Unicast) > 500);
    }

    #[test]
    fn heavy_load_does_not_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        // Offered load far above saturation: the network must keep moving
        // flits (wormhole + dateline VCs guarantee forward progress).
        let mut net = QuarcNetwork::new(NocConfig::quarc(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.8, 8, 0.2, 3));
        for _ in 0..3_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..1_000 {
            net.step(&mut wl);
        }
        assert!(
            net.metrics().flits_delivered() > before,
            "no flits delivered under saturation — deadlock"
        );
    }

    #[test]
    fn concurrent_broadcasts_all_complete() {
        let records = (0..16u32)
            .map(|s| TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(s), 4) })
            .collect();
        let (mut net, mut wl) = one_shot(16, records);
        run_until_quiet(&mut net, &mut wl, 5_000);
        assert_eq!(net.metrics().completed(TrafficClass::Broadcast), 16);
    }

    #[test]
    fn arbitration_policies_both_conserve_traffic() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run_policy = |policy: ArbPolicy| {
            let mut net = QuarcNetwork::with_arb_policy(NocConfig::quarc(16), policy);
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.04, 8, 0.1, 9));
            for _ in 0..4_000 {
                net.step(&mut wl);
            }
            let mut none = TraceWorkload::new(16, vec![]);
            for _ in 0..100_000 {
                net.step(&mut none);
                if net.quiesced() {
                    break;
                }
            }
            assert!(net.quiesced(), "{policy:?} failed to drain");
            let m = net.metrics();
            assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
            (m.unicast_latency().mean(), m.flits_delivered())
        };
        let (rr_lat, rr_flits) = run_policy(ArbPolicy::RoundRobin);
        let (fp_lat, fp_flits) = run_policy(ArbPolicy::FixedPriority);
        // Identical offered traffic, identical delivery totals; only the
        // waiting differs.
        assert_eq!(rr_flits, fp_flits);
        assert!(rr_lat > 0.0 && fp_lat > 0.0);
    }

    #[test]
    fn backlog_reports_queued_flits() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(1), 8),
            }],
        );
        net.step(&mut wl); // injection happens, nothing sent yet
        assert!(net.backlog() > 0);
        run_until_quiet(&mut net, &mut wl, 100);
        assert_eq!(net.backlog(), 0);
    }

    #[test]
    fn out_feeder_slots_match_topology_tables() {
        for (o, out) in NET_OUT.iter().enumerate() {
            let want: Vec<usize> = QuarcTopology::feeders(*out)
                .iter()
                .map(|f| match f {
                    QuarcIn::Local(q) => 4 + q.index(),
                    other => other.index(),
                })
                .collect();
            assert_eq!(OUT_FEEDER_SLOTS[o], want.as_slice(), "output {out:?}");
        }
    }

    #[test]
    fn full_scan_oracle_matches_active_set() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = |full_scan: bool| {
            let mut net = QuarcNetwork::new(NocConfig::quarc(16));
            net.set_full_scan(full_scan);
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.05, 8, 0.1, 77));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (
                net.metrics().flits_delivered(),
                net.flit_hops(),
                net.metrics().unicast_latency().mean().to_bits(),
                net.metrics().broadcast_completion_latency().mean().to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
