//! # quarc-sim
//!
//! The flit-level wormhole simulator for the Quarc NoC reproduction — the
//! Rust counterpart of the OMNeT++ discrete-event simulator the paper used
//! for §3.2 ("we have developed a discrete event simulator operating at flit
//! level").
//!
//! Two complete switch/network models are provided:
//!
//! * [`quarc_net::QuarcNetwork`] — the paper's contribution: all-port router,
//!   doubled cross links, clone-based true broadcast;
//! * [`spider_net::SpidergonNetwork`] — the baseline: one-port router, single
//!   cross link, broadcast by store-and-forward unicast chains;
//!
//! plus the paper's stated "next objective" comparison grids: a 2D mesh
//! ([`mesh_net`], XY routing, single VC) and a 2D torus ([`torus_net`],
//! wrap links with per-dimension dateline VCs). All four are first-class
//! [`quarc_core::topology::TopologyKind`]s, carry every traffic class
//! (mesh/torus collectives ride a dimension-ordered multicast tree planned
//! at the source), and share the same building blocks ([`buffer`], [`link`],
//! [`arbiter`]), the same measurement engine ([`metrics`]) and the same run
//! protocol ([`driver`], [`sweep`]) — so a latency difference between
//! networks can only come from the architectural differences the paper
//! claims matter.
//!
//! ## The hot path: packet table + zero-alloc invariant
//!
//! Every figure is produced by stepping these simulators millions of cycles,
//! so `NocSim::step` is the repository's dominant cost. The steady-state
//! cycle loop is engineered to perform **zero heap allocations** and only
//! O(1) bookkeeping per flit event:
//!
//! * **Interned packet metadata** — each network owns a
//!   [`quarc_core::flit::PacketTable`]; a `Flit` is a 16-byte `Copy` handle
//!   (packet ref + seq + kind + payload). Metadata is written once at
//!   injection, the slot is recycled when the tail is absorbed at the last
//!   node of its path.
//! * **Scratch reuse** — workload polling ([`quarc_workloads::Workload::poll_into`]),
//!   the arbitration transfer list, and per-port VC scans all use buffers
//!   that live across cycles (fixed arrays where the bound is static,
//!   `MAX_VCS`).
//! * **Counter-maintained queries** — link occupancy ([`link::Link`]),
//!   sender-side credits (exact mirrors of downstream free space), source
//!   backlog and buffered-flit totals are all updated at the event and read
//!   in O(1); `quiesced()` is four counter compares, not a network walk.
//! * **Event-driven arbitration skip** — a router that produced no grant can
//!   only become grantable through a tracked event (arrival, injection,
//!   commit, credit return), so quiescent routers are skipped exactly.
//!
//! The refactor is held to **bit-identical** behaviour by
//! `tests/equivalence.rs`: fixed-seed Synthetic/Bursty/Trace runs on all four
//! networks against goldens generated before it, with latency means compared
//! as exact `f64` bit patterns.
//!
//! Throughput is tracked by the `perf` harness in `quarc-bench`:
//!
//! ```text
//! cargo run --release -p quarc-bench --bin perf            # writes BENCH_sim.json
//! cargo run --release -p quarc-bench --bin perf -- --quick # CI smoke grid
//! ```
//!
//! It reports cycles/s and Mflit-hops/s per (topology × size × load) point;
//! `headline` is the largest Quarc network near saturation. CI runs the quick
//! grid and validates the artifact shape on every push.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod buffer;
pub mod driver;
pub mod fault;
pub mod link;
pub mod mesh_net;
pub mod metrics;
pub mod packets;
pub mod probe;
pub mod quarc_net;
pub mod recovery;
pub mod spider_net;
pub mod sweep;
pub mod torus_net;

pub use arbiter::ArbPolicy;
pub use driver::{
    run, run_mono, run_mono_outcome, run_mono_outcome_deadline, AnyNet, MonoStep, NocSim,
    RunOutcome, RunResult, RunSpec, StallDiagnostics,
};
pub use fault::FaultState;
pub use mesh_net::MeshNetwork;
pub use metrics::Metrics;
pub use probe::{CounterSample, FlitEvent, FlitEventKind, Phase, ProbeConfig, SimProbe};
pub use quarc_net::QuarcNetwork;
pub use recovery::{DataDelivery, RecoveryAction, RecoveryState};
pub use spider_net::SpidergonNetwork;
pub use sweep::{
    build_any, build_network, curve_csv, geometric_rates, latency_curve, run_point,
    run_point_outcome, run_point_outcome_deadline, CurvePoint, CurveSpec, PointError, PointOutcome,
    PointRunOutcome, PointSpec,
};
pub use torus_net::TorusNetwork;
