//! # quarc-sim
//!
//! The flit-level wormhole simulator for the Quarc NoC reproduction — the
//! Rust counterpart of the OMNeT++ discrete-event simulator the paper used
//! for §3.2 ("we have developed a discrete event simulator operating at flit
//! level").
//!
//! Two complete switch/network models are provided:
//!
//! * [`quarc_net::QuarcNetwork`] — the paper's contribution: all-port router,
//!   doubled cross links, clone-based true broadcast;
//! * [`spider_net::SpidergonNetwork`] — the baseline: one-port router, single
//!   cross link, broadcast by store-and-forward unicast chains;
//!
//! plus a 2D mesh ([`mesh_net`]) used for validation and for the paper's
//! stated "next objective" comparison. All models share the same building
//! blocks ([`buffer`], [`link`], [`arbiter`]), the same measurement engine
//! ([`metrics`]) and the same run protocol ([`driver`], [`sweep`]), so a
//! latency difference between the two networks can only come from the
//! architectural differences the paper claims matter.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod buffer;
pub mod driver;
pub mod link;
pub mod mesh_net;
pub mod metrics;
pub mod packets;
pub mod quarc_net;
pub mod spider_net;
pub mod sweep;
pub mod torus_net;

pub use arbiter::ArbPolicy;
pub use driver::{run, NocSim, RunResult, RunSpec};
pub use metrics::Metrics;
pub use quarc_net::QuarcNetwork;
pub use spider_net::SpidergonNetwork;
pub use sweep::{
    build_network, curve_csv, geometric_rates, latency_curve, run_point, CurvePoint, CurveSpec,
    PointOutcome, PointSpec,
};
