//! Deterministic fault injection: the expansion of a [`FaultPlan`] into
//! concrete per-link / per-router fault state, shared by all four network
//! models.
//!
//! A plan names *how many* components fail; this module decides *which*
//! ones, by drawing from `DetRng` substreams seeded only by the plan — so
//! the realised fault set is a pure function of `(plan, topology shape)`,
//! campaign artifacts stay a pure function of the spec, and a fault run
//! replays bit-identically from the result cache.
//!
//! Fault semantics (the behavioural contract, pinned by
//! `tests/fault_injection.rs` and documented in `docs/ROBUSTNESS.md`):
//!
//! * **Dead link** (fail-stop at packet granularity): from `onset`, any
//!   packet whose header is routed onto the link is dropped whole — each
//!   flit accounted via `Metrics::record_flit_drop`, each unreachable
//!   receiver via `Metrics::record_lost_receivers`, never silently lost.
//!   Packets whose header was routed before the cut complete normally, so
//!   mid-packet wormhole state is never torn.
//! * **Lossy link**: same drop mechanics, applied per packet with
//!   probability `drop_per_64k / 65536`. The decision hashes
//!   `(link salt, packet id)` — *not* the current cycle — so re-evaluating
//!   arbitration on a different cycle (active-set vs full-scan) cannot
//!   change it.
//! * **Transient link**: blocks losslessly for `transient_cycles` from
//!   `onset`; upstream arbitration simply finds the link infeasible and
//!   credit-based flow control holds everything back.
//! * **Frozen router**: from `onset` the router's arbiter grants nothing
//!   (no forwarding, no ejection, no local injection). Traffic through it
//!   wedges — which is exactly what the driver's stall watchdog exists to
//!   detect and report.
//!
//! Active-set safety: faulted links make grant feasibility *time-dependent*
//! — a transient window opens and closes with the clock, and a header
//! already waiting at a link when `onset` arrives flips from blocked to
//! droppable without any tracked event — so the source nodes of every
//! faulted link are listed in [`FaultState::watch_nodes`] and re-marked
//! grantable each cycle while the plan is live (the same discipline as the
//! Quarc model's stall windows). Frozen routers need no wakeups: a frozen
//! router never becomes grantable again.

use quarc_core::config::FaultPlan;
use quarc_core::ids::PacketId;
use quarc_engine::{mix64, Cycle, DetRng};

/// The realised fault set of one network instance.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// Whether any fault is scheduled at all — the one branch every hot
    /// site pays when the plan is empty.
    any: bool,
    onset: Cycle,
    transient_until: Cycle,
    /// Per-link: permanently dead from `onset`.
    dead: Box<[bool]>,
    /// Per-link: blocked losslessly during `[onset, transient_until)`.
    transient: Box<[bool]>,
    /// Per-link: drop threshold in the upper 16 bits of a `u64` hash
    /// (0 = lossless).
    drop_thresh: Box<[u64]>,
    /// Per-link salt for the drop hash.
    drop_salt: Box<[u64]>,
    /// Per-node: arbitration frozen from `onset`.
    frozen: Box<[bool]>,
    /// Source nodes of faulted links: must be re-marked grantable every
    /// cycle while the plan is live, because their feasibility changes
    /// with time, not with a tracked event.
    watch_nodes: Vec<u32>,
}

/// Draw `count` distinct picks from `pool` (skipping already-`hit` entries,
/// which it updates). Clamps `count` to what remains available.
fn pick_distinct(rng: &mut DetRng, pool: &[usize], count: usize, hit: &mut [bool]) -> Vec<usize> {
    let avail = pool.iter().filter(|&&l| !hit[l]).count();
    let count = count.min(avail);
    let mut picked = Vec::with_capacity(count);
    while picked.len() < count {
        let lid = pool[rng.below(pool.len())];
        if !hit[lid] {
            hit[lid] = true;
            picked.push(lid);
        }
    }
    picked
}

impl FaultState {
    /// Expand `plan` over a network of `nodes` routers and a directed link-id
    /// space of size `links`; `node_of_link` maps a link id to its source
    /// router (for the watch list) and `link_exists` masks out vacant slots
    /// in the id space (a mesh edge router has no north/west neighbour, but
    /// keeps the slot so `lid = node * ports + out` stays uniform).
    pub fn new(
        plan: &FaultPlan,
        nodes: usize,
        links: usize,
        node_of_link: impl Fn(usize) -> usize,
        link_exists: impl Fn(usize) -> bool,
    ) -> Self {
        let mut state = FaultState {
            any: false,
            onset: plan.onset,
            transient_until: plan.onset + plan.transient_cycles as u64,
            dead: vec![false; links].into_boxed_slice(),
            transient: vec![false; links].into_boxed_slice(),
            drop_thresh: vec![0u64; links].into_boxed_slice(),
            drop_salt: vec![0u64; links].into_boxed_slice(),
            frozen: vec![false; nodes].into_boxed_slice(),
            watch_nodes: Vec::new(),
        };
        if plan.is_empty() || links == 0 || nodes == 0 {
            return state;
        }
        state.any = true;
        let pool: Vec<usize> = (0..links).filter(|&l| link_exists(l)).collect();
        let root = DetRng::new(plan.seed);
        let mut scratch = vec![false; links];
        let watch = |state: &mut FaultState, lid: usize| {
            let src = node_of_link(lid) as u32;
            if !state.watch_nodes.contains(&src) {
                state.watch_nodes.push(src);
            }
        };

        let mut rng = root.fork(1);
        for lid in pick_distinct(&mut rng, &pool, plan.dead_links as usize, &mut scratch) {
            state.dead[lid] = true;
            watch(&mut state, lid);
        }
        // Lossy and transient selections avoid the dead set (a dead link
        // already drops everything) but may overlap each other.
        let mut rng = root.fork(2);
        let lossy = pick_distinct(&mut rng, &pool, plan.lossy_links as usize, &mut scratch);
        if plan.drop_per_64k > 0 {
            for lid in lossy {
                state.drop_thresh[lid] = (plan.drop_per_64k as u64) << 48;
                state.drop_salt[lid] = mix64(plan.seed ^ (lid as u64).wrapping_mul(0x9E37));
                watch(&mut state, lid);
            }
        }
        let mut rng = root.fork(3);
        let mut transient_scratch = state.dead.clone();
        for lid in
            pick_distinct(&mut rng, &pool, plan.transient_links as usize, &mut transient_scratch)
        {
            state.transient[lid] = true;
            watch(&mut state, lid);
        }
        let mut rng = root.fork(4);
        let mut node_scratch = vec![false; nodes];
        let node_pool: Vec<usize> = (0..nodes).collect();
        for node in
            pick_distinct(&mut rng, &node_pool, plan.frozen_routers as usize, &mut node_scratch)
        {
            state.frozen[node] = true;
        }
        state
    }

    /// A fault state scheduling nothing (for networks built without a plan).
    pub fn none() -> Self {
        FaultState::new(&FaultPlan::NONE, 0, 0, |_| 0, |_| true)
    }

    /// Whether any fault is scheduled. Every per-cycle site gates on this
    /// first, so an empty plan costs one predictable branch.
    #[inline]
    pub fn any(&self) -> bool {
        self.any
    }

    /// Whether `node`'s arbitration is frozen at `now`.
    #[inline]
    pub fn node_frozen(&self, node: usize, now: Cycle) -> bool {
        self.any && now >= self.onset && self.frozen[node]
    }

    /// Whether `lid` is permanently dead at `now` (drops new packets).
    #[inline]
    pub fn link_dead(&self, lid: usize, now: Cycle) -> bool {
        self.any && now >= self.onset && self.dead[lid]
    }

    /// Whether `lid` is inside a transient lossless blocking window.
    #[inline]
    pub fn link_blocked(&self, lid: usize, now: Cycle) -> bool {
        self.any && now >= self.onset && now < self.transient_until && self.transient[lid]
    }

    /// Whether routing `packet` onto `lid` at `now` drops it. Combines the
    /// dead-link and lossy-link decisions; pure in `(lid, packet)` apart
    /// from the onset gate (and plan-time evaluation is scheduler-exact,
    /// see module docs).
    #[inline]
    pub fn drops_packet(&self, lid: usize, packet: PacketId, now: Cycle) -> bool {
        if !self.any || now < self.onset {
            return false;
        }
        if self.dead[lid] {
            return true;
        }
        let thresh = self.drop_thresh[lid];
        thresh != 0 && mix64(self.drop_salt[lid] ^ packet.0) < thresh
    }

    /// Nodes that must be re-marked grantable every cycle (sources of
    /// faulted links). Empty when the plan is empty.
    #[inline]
    pub fn watch_nodes(&self) -> &[u32] {
        &self.watch_nodes
    }

    /// Realised dead links (diagnostics / tests).
    pub fn dead_links(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&l| self.dead[l]).collect()
    }

    /// Realised frozen routers (diagnostics / tests).
    pub fn frozen_routers(&self) -> Vec<usize> {
        (0..self.frozen.len()).filter(|&n| self.frozen[n]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 77,
            onset: 100,
            dead_links: 3,
            frozen_routers: 1,
            lossy_links: 2,
            drop_per_64k: 6554, // ~10%
            transient_links: 2,
            transient_cycles: 50,
        }
    }

    #[test]
    fn expansion_is_a_pure_function_of_the_plan() {
        let a = FaultState::new(&plan(), 16, 64, |l| l / 4, |_| true);
        let b = FaultState::new(&plan(), 16, 64, |l| l / 4, |_| true);
        assert_eq!(a.dead_links(), b.dead_links());
        assert_eq!(a.frozen_routers(), b.frozen_routers());
        assert_eq!(a.watch_nodes(), b.watch_nodes());
        assert_eq!(a.dead_links().len(), 3);
        assert_eq!(a.frozen_routers().len(), 1);
        // A different seed realises a different fault set (with 64 links and
        // 3 picks, collision of the whole set is vanishingly unlikely).
        let other = FaultState::new(&FaultPlan { seed: 78, ..plan() }, 16, 64, |l| l / 4, |_| true);
        assert_ne!(a.dead_links(), other.dead_links());
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let s = FaultState::new(&FaultPlan::NONE, 16, 64, |l| l / 4, |_| true);
        assert!(!s.any());
        assert!(s.watch_nodes().is_empty());
        assert!(!s.link_dead(0, 1_000_000));
        assert!(!s.node_frozen(0, 1_000_000));
        assert!(!s.drops_packet(0, PacketId(1), 1_000_000));
        let none = FaultState::none();
        assert!(!none.any());
    }

    #[test]
    fn faults_respect_onset_and_transient_window() {
        let s = FaultState::new(&plan(), 16, 64, |l| l / 4, |_| true);
        let dead = s.dead_links()[0];
        assert!(!s.link_dead(dead, 99), "no fault before onset");
        assert!(s.link_dead(dead, 100));
        assert!(s.link_dead(dead, 1 << 40), "dead is permanent");
        let frozen = s.frozen_routers()[0];
        assert!(!s.node_frozen(frozen, 99));
        assert!(s.node_frozen(frozen, 100));
        let transient = (0..64).find(|&l| s.link_blocked(l, 100)).expect("transient link");
        assert!(!s.link_blocked(transient, 99));
        assert!(s.link_blocked(transient, 149));
        assert!(!s.link_blocked(transient, 150), "window closes");
    }

    #[test]
    fn drop_decision_is_per_packet_and_time_independent() {
        let p = FaultPlan {
            seed: 5,
            onset: 0,
            lossy_links: 64,
            drop_per_64k: 32768, // 50%
            ..FaultPlan::NONE
        };
        let s = FaultState::new(&p, 16, 64, |l| l / 4, |_| true);
        let lossy = (0..64).find(|&l| s.drop_thresh[l] != 0).expect("lossy link");
        let mut dropped = 0;
        for id in 0..1000u64 {
            let d1 = s.drops_packet(lossy, PacketId(id), 10);
            let d2 = s.drops_packet(lossy, PacketId(id), 999_999);
            assert_eq!(d1, d2, "drop decision must not depend on the cycle");
            dropped += d1 as u32;
        }
        assert!((300..700).contains(&dropped), "~50% of packets drop, got {dropped}");
    }

    #[test]
    fn counts_are_clamped_to_the_component_space() {
        let p = FaultPlan { seed: 1, dead_links: 500, frozen_routers: 500, ..FaultPlan::NONE };
        let s = FaultState::new(&p, 4, 8, |l| l / 2, |_| true);
        assert_eq!(s.dead_links().len(), 8);
        assert_eq!(s.frozen_routers().len(), 4);
    }
}
