//! The flit-level Spidergon network model — the paper's baseline.
//!
//! Implements the STMicroelectronics architecture as the paper describes it
//! (§2.1) and as the comparison requires (§2.2, §3.2):
//!
//! * **one-port router** — a single local injection queue, so "messages may
//!   block on an occupied injection channel even when their required network
//!   channels are free", and a single arbitrated ejection port;
//! * **single cross link** per node pair, shared by both route directions'
//!   quadrants — the structural bottleneck the Quarc doubles away;
//! * **across-first deterministic routing** with two dateline VCs per link
//!   (deadlock-free, same as Quarc);
//! * **broadcast by unicast** (ref. [9]): replication chains that are fully
//!   absorbed, header-rewritten and *re-injected through the single local
//!   port* at every hop — the N−1 store-and-forward traversals that make
//!   Spidergon broadcast an order of magnitude slower.
//!
//! State layout and per-cycle scheduling follow `quarc_net`: network-owned
//! structure-of-arrays slabs, active-set worklists for links/routers/sources
//! (see `crates/sim/HOTPATH.md`), plus one extra event source — the chain
//! replication queue, whose re-injections mark their node active.

use crate::arbiter::{ArbPolicy, RoundRobinBank};
use crate::buffer::LaneBufs;
use crate::driver::{NocSim, StallDiagnostics};
use crate::fault::FaultState;
use crate::link::{LinkBank, TaggedFlit};
use crate::metrics::Metrics;
use crate::packets::{ack_meta, push_packet, spidergon_expand_into, IdAlloc, PacketQueue};
use crate::probe::{CounterSample, FlitEventKind, Phase, SimProbe};
use crate::recovery::{DataDelivery, RecoveryAction, RecoveryState};
use quarc_core::bits::Bits;
use quarc_core::config::{NocConfig, MAX_VCS};
use quarc_core::flit::{PacketMeta, PacketRef, PacketTable, TrafficClass};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::ring::RingDir;
use quarc_core::routing::{chain_continuations, spidergon_route, RouteAction};
use quarc_core::topology::{SpiIn, SpiOut, SpidergonTopology, TopologyKind};
use quarc_core::vc::{vc_after_rim_hop, vc_for_cross_hop, INJECTION_VC};
use quarc_engine::{Clock, Cycle, EventQueue};
use quarc_workloads::{MessageRequest, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Network output ports in index order (matches `SpiOut::index()` 0..3).
const NET_OUT: [SpiOut; 3] = [SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross];
/// Index of the ejection "output" in arbitration tables.
const EJECT: usize = 3;

/// A flit source within one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Network input `port` (0..3), VC lane `vc`.
    Net {
        /// Input port index.
        port: usize,
        /// VC lane index.
        vc: usize,
    },
    /// The single local ingress queue.
    Local,
}

/// Per-hop plan for the packet at the head of a lane.
#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// `0..3` = forward on that link; [`EJECT`] = deliver locally.
    out: usize,
    /// Outgoing VC (meaningless for ejection).
    out_vc: VcId,
    /// The forward was suppressed by a fault: drain the packet's flits
    /// without transmitting or delivering. Set only at header-plan time.
    dropped: bool,
    /// This worm is a duplicate delivery of an already-served receiver
    /// (recovery only): drain it without recording, but still re-ack the
    /// tail. Decided at the header's commit, cached here for the body.
    dup: bool,
}

/// One input port's request for this cycle.
#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

/// Planned flit movement.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

/// The flit-level Spidergon network simulator. Per-router state is
/// structure-of-arrays (flat `node * ports + port` slabs), stepped over
/// active-set worklists exactly as in [`crate::quarc_net`].
#[derive(Debug)]
pub struct SpidergonNetwork {
    topo: SpidergonTopology,
    cfg: NocConfig,
    clock: Clock,
    /// The single local injection queue per node (one-port router),
    /// holding whole packets (flits materialise on pop).
    inject_q: Box<[PacketQueue]>,
    /// Plan of the packet currently streaming from each local queue.
    inject_plan: Box<[Option<HopPlan>]>,
    /// Input buffers, one bank; lane `(node * 3 + port) * vcs + vc`.
    in_buf: LaneBufs,
    /// Route state per input lane, set by the header.
    in_route: Box<[Option<HopPlan>]>,
    /// Wormhole ownership per output lane `(node * 3 + out) * vcs + vc`.
    out_owner: Box<[Option<Src>]>,
    /// Ejection-port ownership per node (single channel to the PE).
    eject_owner: Box<[Option<Src>]>,
    /// VC arbiter per network input port (`node * 3 + port`).
    rr_in_vc: RoundRobinBank,
    /// Grant arbiter per output port (`node * 4 + out`; 3 links + eject).
    rr_out: RoundRobinBank,
    /// Directed links indexed by `node * 3 + out`.
    links: LinkBank,
    ids: IdAlloc,
    metrics: Metrics,
    /// Interned metadata of every in-flight packet (see [`PacketTable`]).
    packets: PacketTable,
    /// Chain packets awaiting re-injection (already interned): `(node,
    /// packet, len)` due at a cycle. One cycle of header-rewrite latency per
    /// replication hop.
    pending: EventQueue<(usize, PacketRef, u32)>,
    transfers: Vec<Transfer>,
    /// Scratch for workload polling, reused across every poll of the run.
    poll_buf: Vec<MessageRequest>,
    /// Total link traversals (observability; the perf harness reads deltas).
    flit_hops: u64,
    /// Precomputed `link_target` per `node * 3 + out`.
    targets: Vec<(u32, u8)>,
    /// Sender-side credits per `(node * 3 + out) * vcs + vc` (exact mirror
    /// of downstream free space minus in-flight flits, as in `quarc_net`).
    credits: Vec<u32>,
    /// Link id feeding input `node * 3 + in_port` (inverse of `targets`).
    feeder: Vec<u32>,
    /// Active-set state (see `quarc_net` for the invariants).
    node_active: Vec<bool>,
    active_nodes: Vec<u32>,
    node_worklist: Vec<u32>,
    link_live: Vec<bool>,
    live_links: Vec<u32>,
    poll_heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    full_scan: bool,
    /// O(1) counter twins for `backlog()` / `quiesced()`.
    inject_backlog: usize,
    buffered_flits: u64,
    link_occupancy: u64,
    /// Injected fault schedule (all-healthy when the plan is empty).
    fault: FaultState,
    /// End-to-end ack/timeout/retransmit engine from
    /// [`NocConfig::recovery`]. Disabled policies cost one predictable
    /// branch per hook.
    recovery: RecoveryState,
    /// Scratch for retry-target extraction, reused across pump calls.
    retry_targets: Vec<NodeId>,
    /// Instrumentation (off by default; observe, never mutate).
    probe: SimProbe,
}

impl SpidergonNetwork {
    /// Build a network from a validated configuration.
    pub fn new(cfg: NocConfig) -> Self {
        assert_eq!(cfg.kind, TopologyKind::Spidergon, "config is not a Spidergon network");
        cfg.validate().expect("invalid configuration");
        let topo = SpidergonTopology::new(cfg.n);
        let n = cfg.n;
        let targets: Vec<(u32, u8)> = (0..n * 3)
            .map(|i| {
                let (to, tin) =
                    topo.link_target(NodeId::new(i / 3), NET_OUT[i % 3]).expect("network output");
                (to.index() as u32, tin.index() as u8)
            })
            .collect();
        let mut feeder = vec![u32::MAX; n * 3];
        for (lid, &(to, tin)) in targets.iter().enumerate() {
            feeder[to as usize * 3 + tin as usize] = lid as u32;
        }
        assert!(feeder.iter().all(|&f| f != u32::MAX), "every input port has a feeder");
        SpidergonNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            inject_q: (0..n).map(|_| PacketQueue::new()).collect(),
            inject_plan: vec![None; n].into_boxed_slice(),
            in_buf: LaneBufs::new(n * 3 * cfg.vcs, cfg.buffer_depth),
            in_route: vec![None; n * 3 * cfg.vcs].into_boxed_slice(),
            out_owner: vec![None; n * 3 * cfg.vcs].into_boxed_slice(),
            eject_owner: vec![None; n].into_boxed_slice(),
            rr_in_vc: RoundRobinBank::new(n * 3, ArbPolicy::RoundRobin),
            rr_out: RoundRobinBank::new(n * 4, ArbPolicy::RoundRobin),
            links: LinkBank::new(n * 3, cfg.link_latency),
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            packets: PacketTable::new(),
            pending: EventQueue::new(),
            transfers: Vec::new(),
            poll_buf: Vec::new(),
            flit_hops: 0,
            credits: vec![cfg.buffer_depth as u32; n * 3 * cfg.vcs],
            feeder,
            targets,
            node_active: vec![true; n],
            active_nodes: (0..n as u32).collect(),
            node_worklist: Vec::new(),
            link_live: vec![false; n * 3],
            live_links: Vec::new(),
            poll_heap: (0..n as u32).map(|node| Reverse((0, node))).collect(),
            full_scan: false,
            inject_backlog: 0,
            buffered_flits: 0,
            link_occupancy: 0,
            fault: FaultState::new(&cfg.fault, n, n * 3, |lid| lid / 3, |_| true),
            recovery: RecoveryState::new(cfg.recovery, n),
            retry_targets: Vec::new(),
            probe: SimProbe::new(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Test oracle: scan everything every cycle (see
    /// `QuarcNetwork::set_full_scan`). Call before the first `step`.
    pub fn set_full_scan(&mut self, on: bool) {
        assert_eq!(self.clock.now(), 0, "full-scan mode is a construction-time choice");
        self.full_scan = on;
    }

    #[inline]
    fn mark_node(&mut self, node: usize) {
        if !self.node_active[node] {
            self.node_active[node] = true;
            self.active_nodes.push(node as u32);
        }
    }

    /// Resolve the route of a header at `node` into a hop plan.
    ///
    /// The fault drop decision is made here, once per packet per hop: a
    /// forward onto a dead (or hash-selected lossy) link becomes a drop
    /// plan the whole wormhole then follows, so packets are never torn
    /// mid-stream. Ejection uses no link and is never dropped.
    fn plan_header(&self, node: usize, meta: &PacketMeta, cur_vc: VcId) -> HopPlan {
        match spidergon_route(self.topo.ring(), NodeId::new(node), meta.dst) {
            RouteAction::Deliver => {
                HopPlan { out: EJECT, out_vc: INJECTION_VC, dropped: false, dup: false }
            }
            RouteAction::Forward(out) => {
                let out_vc = match out {
                    SpiOut::RimCw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Cw, cur_vc)
                    }
                    SpiOut::RimCcw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Ccw, cur_vc)
                    }
                    SpiOut::Cross => vc_for_cross_hop(),
                    SpiOut::Eject => unreachable!(),
                };
                let dropped = self.fault.any()
                    && self.fault.drops_packet(
                        node * 3 + out.index(),
                        meta.packet,
                        self.clock.now(),
                    );
                HopPlan { out: out.index(), out_vc, dropped, dup: false }
            }
            RouteAction::DeliverAndForward(_) => {
                unreachable!("Spidergon switches cannot clone (§2.2)")
            }
        }
    }

    /// Free downstream space for `(node, out, vc)`, minus in-flight flits.
    /// One read of the sender-side credit counter.
    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        if self.fault.any() && self.fault.link_blocked(node * 3 + out, self.clock.now()) {
            return 0;
        }
        self.credits[(node * 3 + out) * self.cfg.vcs + vc.index()] as usize
    }

    /// Wormhole ownership check for link outputs and the ejection port.
    fn ownership_allows(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        let owner = if plan.out == EJECT {
            self.eject_owner[node]
        } else {
            self.out_owner[(node * 3 + plan.out) * self.cfg.vcs + plan.out_vc.index()]
        };
        match owner {
            Some(o) => o == src && !is_header,
            None => is_header,
        }
    }

    /// Whether the resources of `plan` are available to `src` this cycle.
    fn feasible(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        if plan.dropped {
            // Drops consume the flit without claiming any output resource.
            return true;
        }
        if !self.ownership_allows(node, plan, src, is_header) {
            return false;
        }
        plan.out == EJECT || self.downstream_free(node, plan.out, plan.out_vc) > 0
    }

    /// Request of network input port `p` at `node`.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        let base = (node * 3 + p) * vcs;
        // Fixed-size scratch: runs per active router per cycle, must not
        // allocate.
        let mut feasible: [Option<PortReq>; MAX_VCS] = [None; MAX_VCS];
        for vc in 0..vcs {
            let Some(head) = self.in_buf.front(base + vc).copied() else {
                continue;
            };
            let plan = match self.in_route[base + vc] {
                Some(plan) => {
                    debug_assert!(!head.is_header());
                    plan
                }
                None => {
                    assert!(head.is_header(), "wormhole violated on {p}/{vc}");
                    self.plan_header(node, self.packets.meta(head.packet), VcId(vc as u8))
                }
            };
            let src = Src::Net { port: p, vc };
            // Inlined `feasible` so the credit failure is distinguishable —
            // probe-only: a lane head blocked purely on credits is a credit
            // stall. Evaluation order matches `feasible` exactly.
            let ok = plan.dropped
                || (self.ownership_allows(node, plan, src, head.is_header())
                    && (plan.out == EJECT || {
                        let free = self.downstream_free(node, plan.out, plan.out_vc) > 0;
                        if !free && self.probe.counters_on() {
                            self.probe.note_credit_stall();
                        }
                        free
                    }));
            if ok {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.rr_in_vc.pick(node * 3 + p, vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    /// Request of the single local queue at `node`.
    fn gather_local_port(&self, node: usize) -> Option<PortReq> {
        let head = self.inject_q[node].front()?;
        let plan = match self.inject_plan[node] {
            Some(plan) => {
                debug_assert!(!head.is_header());
                plan
            }
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                let meta = self.packets.meta(head.packet);
                debug_assert_ne!(meta.dst, NodeId::new(node), "self-message injected");
                self.plan_header(node, meta, INJECTION_VC)
            }
        };
        let src = Src::Local;
        self.feasible(node, plan, src, head.is_header()).then_some(PortReq {
            src,
            plan,
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    /// Read-only arbitration over one router.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        // A frozen router grants nothing: returning before any arbiter is
        // consulted keeps full-scan and active-set arbiter state identical.
        if self.fault.node_frozen(node, self.clock.now()) {
            return;
        }
        // Phase 1: VC arbiter per input port.
        let mut reqs: [Option<PortReq>; 4] = [None; 4];
        for p in 0..3 {
            reqs[p] = self.gather_net_port(node, p);
        }
        reqs[3] = self.gather_local_port(node);

        // Drop plans claim no output: commit them directly instead of
        // letting them contend in (and possibly lose) output arbitration.
        for slot in 0..4 {
            if let Some(r) = reqs[slot] {
                if r.plan.dropped {
                    reqs[slot] = None;
                    transfers.push(Transfer { node, req: r });
                }
            }
        }

        // Phase 2: per-output grant over the topology's feeder lists.
        for o in 0..4 {
            let feeders: &[SpiIn] = if o == EJECT {
                SpidergonTopology::feeders(SpiOut::Eject)
            } else {
                SpidergonTopology::feeders(NET_OUT[o])
            };
            let winner = self.rr_out.pick(node * 4 + o, feeders.len(), |k| {
                let slot = feeders[k].index();
                matches!(reqs[slot], Some(r) if r.plan.out == o)
            });
            if let Some(k) = winner {
                let slot = feeders[k].index();
                let req = reqs[slot].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }
    }

    /// Apply one planned transfer.
    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let vcs = self.cfg.vcs;
        // Any commit mutates this router's lane/ownership/credit state.
        self.mark_node(node);
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let lane = (node * 3 + port) * vcs + vc;
                let flit = self.in_buf.pop(lane).expect("planned flit");
                self.buffered_flits -= 1;
                // The freed slot becomes a credit at the upstream sender.
                let feeder = self.feeder[node * 3 + port] as usize;
                self.credits[feeder * vcs + vc] += 1;
                self.mark_node(feeder / 3);
                if t.req.is_header {
                    self.in_route[lane] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.in_route[lane] = None;
                }
                flit
            }
            Src::Local => {
                let flit = self.inject_q[node].pop().expect("planned flit");
                self.inject_backlog -= 1;
                if t.req.is_header {
                    self.inject_plan[node] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.inject_plan[node] = None;
                }
                flit
            }
        };

        if t.req.plan.dropped {
            // Fault drop: every flit is accounted; the header writes off the
            // receivers the suppressed forward (and, for chain packets, every
            // continuation it would have spawned) would have served, so the
            // message ledger still balances and drain loops terminate.
            let meta = *self.packets.meta(flit.packet);
            self.metrics.record_flit_drop(meta.class);
            // Dropped ACKs are pure control loss: the data source's timeout
            // recovers them, and no receiver accounting is owed. Data drops
            // write receivers off here — unless recovery is on, in which
            // case every loss is deferred to the retransmit window and the
            // exhaust pump is the sole write-off site.
            if t.req.is_header && meta.class != TrafficClass::Ack {
                let lost = if self.recovery.enabled() { 0 } else { chain_receivers(&meta) };
                self.metrics.record_lost_receivers(meta.message, lost);
                if self.probe.trace_on() {
                    self.probe.trace(
                        FlitEventKind::Drop,
                        now,
                        meta.message.0,
                        meta.class,
                        node as u32,
                        lost as u32,
                    );
                }
            }
            if t.req.is_tail {
                // No flit of this packet exists anywhere any more.
                self.packets.release(flit.packet);
            }
        } else if t.req.plan.out == EJECT {
            if t.req.is_header {
                self.eject_owner[node] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.eject_owner[node] = None;
            }
            let meta = *self.packets.meta(flit.packet);
            if meta.class == TrafficClass::Ack {
                // ACK absorbed at the data source: a control packet, never a
                // tracked delivery (the data message may already be completed
                // and its slot recycled). First ack per receiver closes its
                // pending bit and samples the round trip; duplicates drain.
                let fresh = self.recovery.on_ack(meta.message, meta.src, now);
                if let Some(created_at) = fresh {
                    self.metrics.record_ack_delivery(now, created_at);
                }
                if self.probe.trace_on() {
                    self.probe.trace(
                        FlitEventKind::Ack,
                        now,
                        meta.message.0,
                        meta.class,
                        meta.src.index() as u32,
                        fresh.is_some() as u32,
                    );
                }
                if t.req.is_tail {
                    self.packets.release(flit.packet);
                }
            } else {
                let mut dup = false;
                if self.recovery.enabled() {
                    if t.req.is_header {
                        // Commit-time dup decision (gather is read-only
                        // arbitration); the verdict rides the cached plan so
                        // the worm's body and tail agree with its header.
                        match self.recovery.on_data_header(meta.message, NodeId::new(node)) {
                            DataDelivery::Fresh { recovered } => {
                                if recovered {
                                    self.metrics.note_recovered_receiver();
                                }
                            }
                            DataDelivery::Dup => {
                                dup = true;
                                if let Src::Net { port, vc } = t.req.src {
                                    let lane = (node * 3 + port) * vcs + vc;
                                    if let Some(plan) = self.in_route[lane].as_mut() {
                                        plan.dup = true;
                                    }
                                }
                            }
                        }
                    } else {
                        dup = t.req.plan.dup;
                    }
                }
                if dup {
                    self.metrics.note_dup_flit();
                } else {
                    // The single arbitrated ejection port is the delivery
                    // site: it streams one packet at a time (eject_owner
                    // pins it).
                    self.metrics.record_flit_delivery(now, NodeId::new(node), node, &flit, &meta);
                }
                if t.req.is_tail {
                    if !dup {
                        self.probe.trace(
                            FlitEventKind::Deliver,
                            now,
                            meta.message.0,
                            meta.class,
                            node as u32,
                            0,
                        );
                        // Broadcast-by-unicast: the tail of a chain packet
                        // triggers the replication logic, which rewrites the
                        // header and re-injects through the single local port
                        // one cycle later (§2.2). The continuations are fresh
                        // packets, interned now and serialised at their due
                        // cycle. Duplicate tails spawn nothing: their
                        // downstream coverage is owed to the source's open
                        // recovery window, not a second chain.
                        if meta.class.is_chain() {
                            for seed in
                                chain_continuations(self.topo.ring(), NodeId::new(node), &meta)
                            {
                                self.probe.trace(
                                    FlitEventKind::Clone,
                                    now,
                                    meta.message.0,
                                    meta.class,
                                    node as u32,
                                    seed.dst.index() as u32,
                                );
                                let pref = self.packets.insert(PacketMeta {
                                    packet: self.ids.packet(),
                                    class: seed.class,
                                    dst: seed.dst,
                                    bitstring: Bits::inline(seed.remaining as u64),
                                    dir: seed.dir,
                                    ..meta
                                });
                                self.pending.push(now + 1, (node, pref, meta.len));
                            }
                        }
                    }
                    // Every tail reception acks — fresh or duplicate: a
                    // duplicate's re-ack may be the one that finally closes
                    // the window when the original ack was itself dropped.
                    if self.recovery.enabled() {
                        self.emit_ack(node, &meta, now);
                    }
                    // The ejected packet has fully left the network: retire it.
                    self.packets.release(flit.packet);
                }
            }
        } else {
            let o = t.req.plan.out;
            let vc = t.req.plan.out_vc;
            let lid = node * 3 + o;
            if t.req.is_header {
                self.out_owner[lid * vcs + vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.out_owner[lid * vcs + vc.index()] = None;
            }
            if flit.is_header() && self.probe.trace_on() {
                let m = self.packets.meta(flit.packet);
                let (msg, class) = (m.message.0, m.class);
                self.probe.trace(FlitEventKind::Hop, now, msg, class, node as u32, o as u32);
            }
            self.flit_hops += 1;
            self.link_occupancy += 1;
            self.credits[lid * vcs + vc.index()] -= 1;
            let idx = self.links.slot_index(now);
            self.links.send(lid, idx, TaggedFlit { flit, vc });
            if !self.link_live[lid] {
                self.link_live[lid] = true;
                self.live_links.push(lid as u32);
            }
        }
    }

    /// Deliver the flit arriving on link `lid` this cycle (if any).
    #[inline]
    fn arrive_link(&mut self, lid: usize, slot_index: usize) {
        if let Some(tf) = self.links.arrive(lid, slot_index) {
            let (to, tin) = self.targets[lid];
            let lane = (to as usize * 3 + tin as usize) * self.cfg.vcs + tf.vc.index();
            self.in_buf.push(lane, tf.flit);
            self.link_occupancy -= 1;
            self.buffered_flits += 1;
            self.mark_node(to as usize);
        }
    }

    /// Poll one source and expand its messages into the local queue.
    fn poll_node<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        node: usize,
        now: Cycle,
        reqs: &mut Vec<MessageRequest>,
    ) {
        reqs.clear();
        workload.poll_into(NodeId::new(node), now, reqs);
        for req in reqs.drain(..) {
            debug_assert_eq!(req.src, NodeId::new(node));
            let message = self.metrics.create_message(req.class, now);
            let (expected, flits) = spidergon_expand_into(
                self.topo.ring(),
                &req,
                message,
                &mut self.ids,
                now,
                &mut self.packets,
                &mut self.inject_q[node],
            );
            self.inject_backlog += flits;
            self.mark_node(node);
            self.metrics.set_expected(message, expected);
            if self.recovery.enabled() {
                self.recovery.on_send(message, &req, now, expected);
            }
            // Probe-only: Inject carries the expected reception count so the
            // trace stream is self-contained for conservation checks.
            self.probe.trace(
                FlitEventKind::Inject,
                now,
                message.0,
                req.class,
                node as u32,
                expected as u32,
            );
        }
    }

    /// Enqueue the single-flit ACK a receiver emits on absorbing a data
    /// tail: a control unicast back to the data source, injected through
    /// the single local port — acks contend for the same one-port router
    /// as application packets and chain re-injections.
    fn emit_ack(&mut self, node: usize, meta: &PacketMeta, now: Cycle) {
        let packet = self.ids.packet();
        let pm = ack_meta(meta.message, NodeId::new(node), meta.src, packet, now);
        let pref = self.packets.insert(pm);
        let flits = push_packet(&mut self.inject_q[node], pref, 1);
        self.inject_backlog += flits;
        self.mark_node(node);
    }

    /// Drain the recovery timer heap: re-inject each due message to its
    /// unacked receiver subset, or write off the never-served receivers of
    /// a retry-exhausted window. Runs in step phase (b) right after the
    /// workload polls, so retransmissions enter the same injection path as
    /// fresh traffic in a deterministic order.
    fn pump_recovery(&mut self, now: Cycle) {
        let mut targets = std::mem::take(&mut self.retry_targets);
        while let Some(action) = self.recovery.pop_action(now, &mut targets) {
            match action {
                RecoveryAction::Retry { message, src, class, len, attempt: _ } => {
                    // Re-expand under the *original* message id (no
                    // create_message / set_expected: the ledger entry is the
                    // original's) narrowed to the unacked subset; collective
                    // classes retransmit as a multicast over that subset,
                    // which Spidergon expands as per-target unicasts.
                    let req = if class == TrafficClass::Unicast {
                        MessageRequest::unicast(src, targets[0], len as usize)
                    } else {
                        MessageRequest::multicast(src, targets.clone(), len as usize)
                    };
                    let node = src.index();
                    let (_, flits) = spidergon_expand_into(
                        self.topo.ring(),
                        &req,
                        message,
                        &mut self.ids,
                        now,
                        &mut self.packets,
                        &mut self.inject_q[node],
                    );
                    self.inject_backlog += flits;
                    self.mark_node(node);
                    self.metrics.note_retransmission();
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Retry,
                            now,
                            message.0,
                            class,
                            node as u32,
                            targets.len() as u32,
                        );
                    }
                }
                RecoveryAction::Exhaust { message, src, class, lost } => {
                    if lost > 0 {
                        self.metrics.record_lost_receivers(message, lost);
                    }
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Expire,
                            now,
                            message.0,
                            class,
                            src.index() as u32,
                            lost as u32,
                        );
                    }
                }
            }
        }
        self.retry_targets = targets;
    }

    /// Advance one cycle (monomorphized; see `QuarcNetwork::step_cycle`).
    pub fn step_cycle<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        let now = self.clock.now();
        // Phase profiler marks (observe-only; see `QuarcNetwork::step_cycle`).
        let mut mark = if self.probe.begin_profiled_cycle(now) {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let arrivals_walked = if mark.is_some() {
            if self.full_scan {
                self.cfg.n * 3
            } else {
                self.live_links.len()
            }
        } else {
            0
        };

        // (a) Link arrivals — only links carrying flits.
        let slot = self.links.slot_index(now);
        if self.full_scan {
            for lid in 0..self.cfg.n * 3 {
                self.arrive_link(lid, slot);
            }
            let mut live = std::mem::take(&mut self.live_links);
            for &lid in &live {
                self.link_live[lid as usize] = false;
            }
            live.clear();
            self.live_links = live;
        } else {
            let mut live = std::mem::take(&mut self.live_links);
            live.retain(|&lid| {
                self.arrive_link(lid as usize, slot);
                let still = !self.links.is_empty(lid as usize);
                if !still {
                    self.link_live[lid as usize] = false;
                }
                still
            });
            self.live_links = live;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Arrivals, m, arrivals_walked);
        }

        // (b) Re-injections from the replication logic, then new messages
        // from due sources.
        let mut polled = 0usize;
        while let Some((_, (node, pref, len))) = self.pending.pop_due(now) {
            self.inject_backlog += push_packet(&mut self.inject_q[node], pref, len);
            self.mark_node(node);
            polled += 1;
        }
        let mut reqs = std::mem::take(&mut self.poll_buf);
        if self.full_scan {
            polled += self.cfg.n;
            for node in 0..self.cfg.n {
                self.poll_node(workload, node, now, &mut reqs);
            }
        } else {
            while self.poll_heap.peek().is_some_and(|&Reverse((due, _))| due <= now) {
                let Reverse((due, node)) = self.poll_heap.pop().expect("peeked");
                debug_assert!(due == now, "due cycles never pass unpolled");
                polled += 1;
                self.poll_node(workload, node as usize, now, &mut reqs);
                let next = workload.next_due(NodeId::new(node as usize), now).max(now + 1);
                self.poll_heap.push(Reverse((next, node)));
            }
        }
        self.poll_buf = reqs;
        // Recovery deadlines: retransmissions and write-offs join phase (b)
        // alongside chain re-injections and fresh traffic.
        if self.recovery.enabled() {
            self.pump_recovery(now);
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Polls, m, polled);
        }

        // Faulted links flip feasibility by time, not via a tracked event
        // (a header waiting at a link when `onset` arrives becomes
        // droppable in place): keep their source routers in the active set.
        if self.fault.any() {
            for i in 0..self.fault.watch_nodes().len() {
                let node = self.fault.watch_nodes()[i] as usize;
                self.mark_node(node);
            }
        }

        // (c) Arbitration over the sorted routers-with-work worklist,
        // (d) commit.
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        let gather_walked;
        if self.full_scan {
            let mut marks = std::mem::take(&mut self.active_nodes);
            for &node in &marks {
                self.node_active[node as usize] = false;
            }
            marks.clear();
            self.active_nodes = marks;
            gather_walked = self.cfg.n;
            for node in 0..self.cfg.n {
                self.gather_node(node, &mut transfers);
            }
        } else {
            let mut worklist = std::mem::take(&mut self.node_worklist);
            debug_assert!(worklist.is_empty());
            std::mem::swap(&mut worklist, &mut self.active_nodes);
            worklist.sort_unstable();
            gather_walked = worklist.len();
            for &node in &worklist {
                self.node_active[node as usize] = false;
                self.gather_node(node as usize, &mut transfers);
            }
            worklist.clear();
            self.node_worklist = worklist;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Gather, m, gather_walked);
        }
        let committed = transfers.len();
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Commit, m, committed);
        }

        if self.probe.counters_due(now) {
            let sample = CounterSample {
                cycle: now,
                backlog: self.inject_backlog as u64,
                buffered: self.buffered_flits,
                on_links: self.link_occupancy,
                live_packets: self.packets.live() as u64,
                live_links: self.live_links.len() as u64,
                active_routers: self.active_nodes.len() as u64,
                poll_sources: self.poll_heap.len() as u64,
                in_flight: self.metrics.in_flight() as u64,
                completed: self.metrics.completed_total(),
                delivered: self.metrics.flits_delivered(),
                dropped: self.metrics.flits_dropped(),
                credit_stalls: self.probe.credit_stalls(),
            };
            self.probe.push_sample(sample);
        }

        self.clock.tick();
    }

    /// Total flits queued at source transceivers. O(1).
    pub fn backlog(&self) -> usize {
        self.inject_backlog
    }

    /// Packets currently interned (in flight or awaiting re-injection).
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }
}

impl NocSim for SpidergonNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        self.step_cycle(workload);
    }

    fn note_workload_change(&mut self) {
        let now = self.clock.now();
        self.poll_heap.clear();
        for node in 0..self.cfg.n as u32 {
            self.poll_heap.push(Reverse((now, node)));
        }
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Spidergon
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn probe(&self) -> &SimProbe {
        &self.probe
    }

    fn probe_mut(&mut self) -> &mut SimProbe {
        &mut self.probe
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    fn quiesced(&self) -> bool {
        // Counters only — O(1) per call (drain loops poll this every cycle).
        // `pending() > 0` keeps drains alive while a backoff timer holds the
        // fabric idle: an empty network whose recovery window is not done is
        // not quiet — a deadline will still fire.
        self.metrics.in_flight() == 0
            && self.inject_backlog == 0
            && self.pending.is_empty()
            && self.link_occupancy == 0
            && self.buffered_flits == 0
            && self.recovery.pending() == 0
    }

    fn recovery_pending(&self) -> u64 {
        self.recovery.pending()
    }

    fn stall_diagnostics(&self) -> StallDiagnostics {
        let vcs = self.cfg.vcs;
        let mut busiest: Vec<(u32, u32)> = (0..self.cfg.n)
            .map(|node| {
                let mut flits = 0usize;
                for lane in node * 3 * vcs..(node + 1) * 3 * vcs {
                    flits += self.in_buf.len(lane);
                }
                flits += self.inject_q[node].flits();
                (node as u32, flits as u32)
            })
            .filter(|&(_, flits)| flits > 0)
            .collect();
        busiest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        busiest.truncate(StallDiagnostics::TOP_ROUTERS);
        StallDiagnostics {
            backlog: self.inject_backlog as u64,
            buffered: self.buffered_flits,
            on_links: self.link_occupancy,
            in_flight: self.metrics.in_flight() as u64,
            live_packets: self.packets.live() as u64,
            fault: self.cfg.fault.to_string(),
            busiest_routers: busiest,
        }
    }
}

/// Receivers a dropped packet would still have served: its own delivery
/// plus, for chain packets, every node the continuations it would have
/// spawned at delivery would cover (a rim chain with `remaining = r` covers
/// `1 + r` nodes; a cross seed's receiver spawns two rim chains of
/// `remaining − 1` each, so it covers `1 + 2·remaining`).
fn chain_receivers(meta: &PacketMeta) -> usize {
    match meta.class {
        TrafficClass::ChainRim => 1 + meta.bitstring.inline_value() as usize,
        TrafficClass::ChainCross => 1 + 2 * meta.bitstring.inline_value() as usize,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;
    use quarc_core::routing::spidergon_hops;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    fn run_until_quiet(net: &mut SpidergonNetwork, wl: &mut dyn Workload, cap: u64) {
        for _ in 0..cap {
            net.step(wl);
            if net.quiesced() {
                return;
            }
        }
        panic!("network did not quiesce within {cap} cycles");
    }

    fn one_shot(n: usize, records: Vec<TraceRecord>) -> (SpidergonNetwork, TraceWorkload) {
        (SpidergonNetwork::new(NocConfig::spidergon(n)), TraceWorkload::new(n, records))
    }

    #[test]
    fn single_unicast_ideal_latency() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        let d = spidergon_hops(&SpidergonTopology::new(16).ring().clone(), NodeId(0), NodeId(3));
        let got = net.metrics().unicast_latency().mean();
        let ideal = d as f64 + 7.0 + 1.0;
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs {ideal}");
    }

    #[test]
    fn cross_route_unicast_arrives() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(7), 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        assert_eq!(net.metrics().completed(TrafficClass::Unicast), 1);
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        for n in [8usize, 16, 32] {
            let (mut net, mut wl) = one_shot(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(1), 4) }],
            );
            run_until_quiet(&mut net, &mut wl, 20_000);
            let m = net.metrics();
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
        }
    }

    #[test]
    fn broadcast_is_store_and_forward_slow() {
        // The chain re-serialises M flits at every hop: completion must cost
        // on the order of (n/2)·M cycles, far beyond the Quarc's n/4 + M.
        let n = 16;
        let m_len = 8u64;
        let (mut net, mut wl) = one_shot(
            n,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::broadcast(NodeId(0), m_len as usize),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 20_000);
        let got = net.metrics().broadcast_completion_latency().mean();
        // Longest chain: cross (1 + M−1) then (n/4 − 1) rim hops, each costing
        // a full store-and-forward of ~M cycles plus the rewrite cycle.
        let floor = (n as u64 / 4 - 1) as f64 * m_len as f64;
        assert!(got > floor, "completion {got} ≤ floor {floor}: chains not store-and-forward?");
    }

    #[test]
    fn quarc_broadcast_beats_spidergon_by_a_lot() {
        use crate::quarc_net::QuarcNetwork;
        let n = 16;
        let record =
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 8) }];
        let mut q = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wq = TraceWorkload::new(n, record.clone());
        for _ in 0..5_000 {
            q.step(&mut wq);
            if q.quiesced() {
                break;
            }
        }
        let (mut s, mut ws) = one_shot(n, record);
        run_until_quiet(&mut s, &mut ws, 20_000);
        let quarc = q.metrics().broadcast_completion_latency().mean();
        let spider = s.metrics().broadcast_completion_latency().mean();
        assert!(
            spider > 4.0 * quarc,
            "expected order-of-magnitude gap: quarc {quarc} vs spidergon {spider}"
        );
    }

    #[test]
    fn sustained_load_drains_clean() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.01, 8, 0.05, 7));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..20_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "failed to drain (possible deadlock)");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
    }

    #[test]
    fn heavy_load_does_not_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.8, 8, 0.1, 3));
        for _ in 0..3_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..1_000 {
            net.step(&mut wl);
        }
        assert!(net.metrics().flits_delivered() > before, "deadlock under overload");
    }

    #[test]
    fn deterministic_runs() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = || {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.03, 8, 0.1, 42));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (net.metrics().flits_delivered(), net.metrics().unicast_latency().mean())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multicast_as_unicasts_completes() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(NodeId(0), vec![NodeId(3), NodeId(9)], 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 1_000);
        assert_eq!(net.metrics().completed(TrafficClass::Multicast), 1);
    }

    #[test]
    fn full_scan_oracle_matches_active_set() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = |full_scan: bool| {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
            net.set_full_scan(full_scan);
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.05, 99));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (
                net.metrics().flits_delivered(),
                net.flit_hops(),
                net.metrics().unicast_latency().mean().to_bits(),
                net.metrics().broadcast_completion_latency().mean().to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
