//! The flit-level Spidergon network model — the paper's baseline.
//!
//! Implements the STMicroelectronics architecture as the paper describes it
//! (§2.1) and as the comparison requires (§2.2, §3.2):
//!
//! * **one-port router** — a single local injection queue, so "messages may
//!   block on an occupied injection channel even when their required network
//!   channels are free", and a single arbitrated ejection port;
//! * **single cross link** per node pair, shared by both route directions'
//!   quadrants — the structural bottleneck the Quarc doubles away;
//! * **across-first deterministic routing** with two dateline VCs per link
//!   (deadlock-free, same as Quarc);
//! * **broadcast by unicast** (ref. [9]): replication chains that are fully
//!   absorbed, header-rewritten and *re-injected through the single local
//!   port* at every hop — the N−1 store-and-forward traversals that make
//!   Spidergon broadcast an order of magnitude slower.

use crate::arbiter::RoundRobin;
use crate::buffer::VcFifo;
use crate::driver::NocSim;
use crate::link::{Link, TaggedFlit};
use crate::metrics::Metrics;
use crate::packets::{packetize, spidergon_expand, IdAlloc};
use quarc_core::config::NocConfig;
use quarc_core::flit::{Flit, PacketMeta};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::ring::RingDir;
use quarc_core::routing::{chain_continuations, spidergon_route, RouteAction};
use quarc_core::topology::{SpiIn, SpiOut, SpidergonTopology, TopologyKind};
use quarc_core::vc::{vc_after_rim_hop, vc_for_cross_hop, INJECTION_VC};
use quarc_engine::{Clock, Cycle, EventQueue};
use quarc_workloads::Workload;
use std::collections::VecDeque;

/// Network output ports in index order (matches `SpiOut::index()` 0..3).
const NET_OUT: [SpiOut; 3] = [SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross];
/// Index of the ejection "output" in arbitration tables.
const EJECT: usize = 3;

/// A flit source within one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Network input `port` (0..3), VC lane `vc`.
    Net {
        /// Input port index.
        port: usize,
        /// VC lane index.
        vc: usize,
    },
    /// The single local ingress queue.
    Local,
}

/// Per-hop plan for the packet at the head of a lane.
#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// `0..3` = forward on that link; [`EJECT`] = deliver locally.
    out: usize,
    /// Outgoing VC (meaningless for ejection).
    out_vc: VcId,
}

/// One input port's request for this cycle.
#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

/// Planned flit movement.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

/// Per-node state.
#[derive(Debug)]
struct NodeState {
    /// The single local injection queue (one-port router).
    inject_q: VecDeque<Flit>,
    /// Plan of the packet currently streaming from the local queue.
    inject_plan: Option<HopPlan>,
    /// Input buffers `[net port][vc]`.
    in_buf: Vec<Vec<VcFifo>>,
    /// Route state per `[net port][vc]`, set by the header.
    in_route: Vec<Vec<Option<HopPlan>>>,
    /// Wormhole ownership per `[net out][vc]`.
    out_owner: Vec<Vec<Option<Src>>>,
    /// Ejection-port ownership (single channel to the PE).
    eject_owner: Option<Src>,
    /// VC arbiter per network input port.
    rr_in_vc: [RoundRobin; 3],
    /// Grant arbiter per output port (3 links + eject).
    rr_out: [RoundRobin; 4],
}

impl NodeState {
    fn new(vcs: usize, depth: usize) -> Self {
        NodeState {
            inject_q: VecDeque::new(),
            inject_plan: None,
            in_buf: (0..3).map(|_| (0..vcs).map(|_| VcFifo::new(depth)).collect()).collect(),
            in_route: (0..3).map(|_| vec![None; vcs]).collect(),
            out_owner: (0..3).map(|_| vec![None; vcs]).collect(),
            eject_owner: None,
            rr_in_vc: Default::default(),
            rr_out: Default::default(),
        }
    }
}

/// The flit-level Spidergon network simulator.
#[derive(Debug)]
pub struct SpidergonNetwork {
    topo: SpidergonTopology,
    cfg: NocConfig,
    clock: Clock,
    nodes: Vec<NodeState>,
    /// Directed links indexed by `node * 3 + out`.
    links: Vec<Link>,
    ids: IdAlloc,
    metrics: Metrics,
    /// Chain packets awaiting re-injection: `(node, flits)` due at a cycle.
    /// One cycle of header-rewrite latency per replication hop.
    pending: EventQueue<(usize, Vec<Flit>)>,
    transfers: Vec<Transfer>,
}

impl SpidergonNetwork {
    /// Build a network from a validated configuration.
    pub fn new(cfg: NocConfig) -> Self {
        assert_eq!(cfg.kind, TopologyKind::Spidergon, "config is not a Spidergon network");
        cfg.validate().expect("invalid configuration");
        let topo = SpidergonTopology::new(cfg.n);
        let nodes = (0..cfg.n).map(|_| NodeState::new(cfg.vcs, cfg.buffer_depth)).collect();
        let links = (0..cfg.n * 3).map(|_| Link::new(cfg.link_latency)).collect();
        SpidergonNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            nodes,
            links,
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            pending: EventQueue::new(),
            transfers: Vec::new(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Resolve the route of a header at `node` into a hop plan.
    fn plan_header(&self, node: usize, meta: &PacketMeta, cur_vc: VcId) -> HopPlan {
        match spidergon_route(self.topo.ring(), NodeId::new(node), meta.dst) {
            RouteAction::Deliver => HopPlan { out: EJECT, out_vc: INJECTION_VC },
            RouteAction::Forward(out) => {
                let out_vc = match out {
                    SpiOut::RimCw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Cw, cur_vc)
                    }
                    SpiOut::RimCcw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Ccw, cur_vc)
                    }
                    SpiOut::Cross => vc_for_cross_hop(),
                    SpiOut::Eject => unreachable!(),
                };
                HopPlan { out: out.index(), out_vc }
            }
            RouteAction::DeliverAndForward(_) => {
                unreachable!("Spidergon switches cannot clone (§2.2)")
            }
        }
    }

    /// Free downstream space for `(node, out, vc)`, minus in-flight flits.
    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        let (to, tin) =
            self.topo.link_target(NodeId::new(node), NET_OUT[out]).expect("network output");
        let buffered = &self.nodes[to.index()].in_buf[tin.index()][vc.index()];
        buffered.free().saturating_sub(self.links[node * 3 + out].in_flight(vc))
    }

    /// Wormhole ownership check for link outputs and the ejection port.
    fn ownership_allows(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        let owner = if plan.out == EJECT {
            self.nodes[node].eject_owner
        } else {
            self.nodes[node].out_owner[plan.out][plan.out_vc.index()]
        };
        match owner {
            Some(o) => o == src && !is_header,
            None => is_header,
        }
    }

    /// Whether the resources of `plan` are available to `src` this cycle.
    fn feasible(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        if !self.ownership_allows(node, plan, src, is_header) {
            return false;
        }
        plan.out == EJECT || self.downstream_free(node, plan.out, plan.out_vc) > 0
    }

    /// Request of network input port `p` at `node`.
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        let mut feasible: Vec<Option<PortReq>> = vec![None; vcs];
        for vc in 0..vcs {
            let Some(head) = self.nodes[node].in_buf[p][vc].front().copied() else {
                continue;
            };
            let plan = match self.nodes[node].in_route[p][vc] {
                Some(plan) => {
                    debug_assert!(!head.is_header());
                    plan
                }
                None => {
                    assert!(head.is_header(), "wormhole violated on {p}/{vc}");
                    self.plan_header(node, &head.meta, VcId(vc as u8))
                }
            };
            let src = Src::Net { port: p, vc };
            if self.feasible(node, plan, src, head.is_header()) {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.nodes[node].rr_in_vc[p].pick(vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    /// Request of the single local queue at `node`.
    fn gather_local_port(&self, node: usize) -> Option<PortReq> {
        let head = self.nodes[node].inject_q.front()?;
        let plan = match self.nodes[node].inject_plan {
            Some(plan) => {
                debug_assert!(!head.is_header());
                plan
            }
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                debug_assert_ne!(head.meta.dst, NodeId::new(node), "self-message injected");
                self.plan_header(node, &head.meta, INJECTION_VC)
            }
        };
        let src = Src::Local;
        self.feasible(node, plan, src, head.is_header()).then_some(PortReq {
            src,
            plan,
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    /// Read-only arbitration over one router.
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        // Phase 1: VC arbiter per input port.
        let mut reqs: [Option<PortReq>; 4] = [None; 4];
        for p in 0..3 {
            reqs[p] = self.gather_net_port(node, p);
        }
        reqs[3] = self.gather_local_port(node);

        // Phase 2: per-output grant over the topology's feeder lists.
        for o in 0..4 {
            let feeders: &[SpiIn] = if o == EJECT {
                SpidergonTopology::feeders(SpiOut::Eject)
            } else {
                SpidergonTopology::feeders(NET_OUT[o])
            };
            let winner = self.nodes[node].rr_out[o].pick(feeders.len(), |k| {
                let slot = feeders[k].index();
                matches!(reqs[slot], Some(r) if r.plan.out == o)
            });
            if let Some(k) = winner {
                let slot = feeders[k].index();
                let req = reqs[slot].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }
    }

    /// Apply one planned transfer.
    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let flit = self.nodes[node].in_buf[port][vc].pop().expect("planned flit");
                if t.req.is_header {
                    self.nodes[node].in_route[port][vc] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].in_route[port][vc] = None;
                }
                flit
            }
            Src::Local => {
                let flit = self.nodes[node].inject_q.pop_front().expect("planned flit");
                if t.req.is_header {
                    self.nodes[node].inject_plan = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].inject_plan = None;
                }
                flit
            }
        };

        if t.req.plan.out == EJECT {
            if t.req.is_header {
                self.nodes[node].eject_owner = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].eject_owner = None;
            }
            self.metrics.record_flit_delivery(now, NodeId::new(node), &flit);
            // Broadcast-by-unicast: the tail of a chain packet triggers the
            // replication logic, which rewrites the header and re-injects
            // through the single local port one cycle later (§2.2).
            if t.req.is_tail && flit.meta.class.is_chain() {
                for seed in chain_continuations(self.topo.ring(), NodeId::new(node), &flit.meta) {
                    let meta = PacketMeta {
                        packet: self.ids.packet(),
                        class: seed.class,
                        dst: seed.dst,
                        bitstring: seed.remaining,
                        dir: seed.dir,
                        ..flit.meta
                    };
                    self.pending.push(now + 1, (node, packetize(meta)));
                }
            }
        } else {
            let o = t.req.plan.out;
            let vc = t.req.plan.out_vc;
            if t.req.is_header {
                self.nodes[node].out_owner[o][vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].out_owner[o][vc.index()] = None;
            }
            self.links[node * 3 + o].send(TaggedFlit { flit, vc });
        }
    }

    /// Total flits queued at source transceivers.
    pub fn backlog(&self) -> usize {
        self.nodes.iter().map(|n| n.inject_q.len()).sum()
    }
}

impl NocSim for SpidergonNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        let now = self.clock.now();

        // (a) Link arrivals.
        for node in 0..self.cfg.n {
            for o in 0..3 {
                if let Some(tf) = self.links[node * 3 + o].step() {
                    let (to, tin) = self
                        .topo
                        .link_target(NodeId::new(node), NET_OUT[o])
                        .expect("network output");
                    self.nodes[to.index()].in_buf[tin.index()][tf.vc.index()].push(tf.flit);
                }
            }
        }

        // (b) Re-injections from the replication logic, then new messages.
        for (node, flits) in self.pending.drain_due(now) {
            self.nodes[node].inject_q.extend(flits);
        }
        for node in 0..self.cfg.n {
            for req in workload.poll(NodeId::new(node), now) {
                debug_assert_eq!(req.src, NodeId::new(node));
                let message = self.ids.message();
                let (packets, expected) =
                    spidergon_expand(self.topo.ring(), &req, message, &mut self.ids, now);
                self.metrics.record_created(message, req.class, now, expected);
                for flits in packets {
                    self.nodes[node].inject_q.extend(flits);
                }
            }
        }

        // (c) Arbitration, (d) commit.
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        for node in 0..self.cfg.n {
            self.gather_node(node, &mut transfers);
        }
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;

        self.clock.tick();
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Spidergon
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn quiesced(&self) -> bool {
        self.metrics.in_flight() == 0
            && self.backlog() == 0
            && self.pending.is_empty()
            && self.links.iter().all(Link::is_empty)
            && self
                .nodes
                .iter()
                .all(|n| n.in_buf.iter().all(|port| port.iter().all(VcFifo::is_empty)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;
    use quarc_core::routing::spidergon_hops;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    fn run_until_quiet(net: &mut SpidergonNetwork, wl: &mut dyn Workload, cap: u64) {
        for _ in 0..cap {
            net.step(wl);
            if net.quiesced() {
                return;
            }
        }
        panic!("network did not quiesce within {cap} cycles");
    }

    fn one_shot(n: usize, records: Vec<TraceRecord>) -> (SpidergonNetwork, TraceWorkload) {
        (SpidergonNetwork::new(NocConfig::spidergon(n)), TraceWorkload::new(n, records))
    }

    #[test]
    fn single_unicast_ideal_latency() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        let d = spidergon_hops(&SpidergonTopology::new(16).ring().clone(), NodeId(0), NodeId(3));
        let got = net.metrics().unicast_latency().mean();
        let ideal = d as f64 + 7.0 + 1.0;
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs {ideal}");
    }

    #[test]
    fn cross_route_unicast_arrives() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(7), 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        assert_eq!(net.metrics().completed(TrafficClass::Unicast), 1);
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        for n in [8usize, 16, 32] {
            let (mut net, mut wl) = one_shot(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(1), 4) }],
            );
            run_until_quiet(&mut net, &mut wl, 20_000);
            let m = net.metrics();
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
        }
    }

    #[test]
    fn broadcast_is_store_and_forward_slow() {
        // The chain re-serialises M flits at every hop: completion must cost
        // on the order of (n/2)·M cycles, far beyond the Quarc's n/4 + M.
        let n = 16;
        let m_len = 8u64;
        let (mut net, mut wl) = one_shot(
            n,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::broadcast(NodeId(0), m_len as usize),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 20_000);
        let got = net.metrics().broadcast_completion_latency().mean();
        // Longest chain: cross (1 + M−1) then (n/4 − 1) rim hops, each costing
        // a full store-and-forward of ~M cycles plus the rewrite cycle.
        let floor = (n as u64 / 4 - 1) as f64 * m_len as f64;
        assert!(got > floor, "completion {got} ≤ floor {floor}: chains not store-and-forward?");
    }

    #[test]
    fn quarc_broadcast_beats_spidergon_by_a_lot() {
        use crate::quarc_net::QuarcNetwork;
        let n = 16;
        let record =
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 8) }];
        let mut q = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wq = TraceWorkload::new(n, record.clone());
        for _ in 0..5_000 {
            q.step(&mut wq);
            if q.quiesced() {
                break;
            }
        }
        let (mut s, mut ws) = one_shot(n, record);
        run_until_quiet(&mut s, &mut ws, 20_000);
        let quarc = q.metrics().broadcast_completion_latency().mean();
        let spider = s.metrics().broadcast_completion_latency().mean();
        assert!(
            spider > 4.0 * quarc,
            "expected order-of-magnitude gap: quarc {quarc} vs spidergon {spider}"
        );
    }

    #[test]
    fn sustained_load_drains_clean() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.01, 8, 0.05, 7));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..20_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "failed to drain (possible deadlock)");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
    }

    #[test]
    fn heavy_load_does_not_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.8, 8, 0.1, 3));
        for _ in 0..3_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..1_000 {
            net.step(&mut wl);
        }
        assert!(net.metrics().flits_delivered() > before, "deadlock under overload");
    }

    #[test]
    fn deterministic_runs() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = || {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.03, 8, 0.1, 42));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (net.metrics().flits_delivered(), net.metrics().unicast_latency().mean())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multicast_as_unicasts_completes() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(NodeId(0), vec![NodeId(3), NodeId(9)], 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 1_000);
        assert_eq!(net.metrics().completed(TrafficClass::Multicast), 1);
    }
}
