//! The flit-level Spidergon network model — the paper's baseline.
//!
//! Implements the STMicroelectronics architecture as the paper describes it
//! (§2.1) and as the comparison requires (§2.2, §3.2):
//!
//! * **one-port router** — a single local injection queue, so "messages may
//!   block on an occupied injection channel even when their required network
//!   channels are free", and a single arbitrated ejection port;
//! * **single cross link** per node pair, shared by both route directions'
//!   quadrants — the structural bottleneck the Quarc doubles away;
//! * **across-first deterministic routing** with two dateline VCs per link
//!   (deadlock-free, same as Quarc);
//! * **broadcast by unicast** (ref. [9]): replication chains that are fully
//!   absorbed, header-rewritten and *re-injected through the single local
//!   port* at every hop — the N−1 store-and-forward traversals that make
//!   Spidergon broadcast an order of magnitude slower.

use crate::arbiter::RoundRobin;
use crate::buffer::LaneBufs;
use crate::driver::NocSim;
use crate::link::{Link, TaggedFlit};
use crate::metrics::Metrics;
use crate::packets::{push_packet, spidergon_expand_into, IdAlloc};
use quarc_core::config::{NocConfig, MAX_VCS};
use quarc_core::flit::{Flit, PacketMeta, PacketRef, PacketTable};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::ring::RingDir;
use quarc_core::routing::{chain_continuations, spidergon_route, RouteAction};
use quarc_core::topology::{SpiIn, SpiOut, SpidergonTopology, TopologyKind};
use quarc_core::vc::{vc_after_rim_hop, vc_for_cross_hop, INJECTION_VC};
use quarc_engine::{Clock, Cycle, EventQueue};
use quarc_workloads::{MessageRequest, Workload};
use std::collections::VecDeque;

/// Network output ports in index order (matches `SpiOut::index()` 0..3).
const NET_OUT: [SpiOut; 3] = [SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross];
/// Index of the ejection "output" in arbitration tables.
const EJECT: usize = 3;

/// A flit source within one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// Network input `port` (0..3), VC lane `vc`.
    Net {
        /// Input port index.
        port: usize,
        /// VC lane index.
        vc: usize,
    },
    /// The single local ingress queue.
    Local,
}

/// Per-hop plan for the packet at the head of a lane.
#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// `0..3` = forward on that link; [`EJECT`] = deliver locally.
    out: usize,
    /// Outgoing VC (meaningless for ejection).
    out_vc: VcId,
}

/// One input port's request for this cycle.
#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

/// Planned flit movement.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

/// Per-node state. Per-lane state is flat (`port * vcs + vc`) / fixed
/// arrays, as in `quarc_net` — no nested-`Vec` chasing in the hot loops.
#[derive(Debug)]
struct NodeState {
    /// The single local injection queue (one-port router).
    inject_q: VecDeque<Flit>,
    /// Plan of the packet currently streaming from the local queue.
    inject_plan: Option<HopPlan>,
    /// Input buffers, flat over `port * vcs + vc`.
    in_buf: LaneBufs,
    /// Route state per `[net port][vc]`, set by the header.
    in_route: [[Option<HopPlan>; MAX_VCS]; 3],
    /// Wormhole ownership per `[net out][vc]`.
    out_owner: [[Option<Src>; MAX_VCS]; 3],
    /// Ejection-port ownership (single channel to the PE).
    eject_owner: Option<Src>,
    /// VC arbiter per network input port.
    rr_in_vc: [RoundRobin; 3],
    /// Grant arbiter per output port (3 links + eject).
    rr_out: [RoundRobin; 4],
}

impl NodeState {
    fn new(vcs: usize, depth: usize) -> Self {
        NodeState {
            inject_q: VecDeque::new(),
            inject_plan: None,
            in_buf: LaneBufs::new(3 * vcs, depth),
            in_route: [[None; MAX_VCS]; 3],
            out_owner: [[None; MAX_VCS]; 3],
            eject_owner: None,
            rr_in_vc: Default::default(),
            rr_out: Default::default(),
        }
    }
}

/// The flit-level Spidergon network simulator.
#[derive(Debug)]
pub struct SpidergonNetwork {
    topo: SpidergonTopology,
    cfg: NocConfig,
    clock: Clock,
    nodes: Vec<NodeState>,
    /// Directed links indexed by `node * 3 + out`.
    links: Vec<Link>,
    ids: IdAlloc,
    metrics: Metrics,
    /// Interned metadata of every in-flight packet (see [`PacketTable`]).
    packets: PacketTable,
    /// Chain packets awaiting re-injection (already interned): `(node,
    /// packet, len)` due at a cycle. One cycle of header-rewrite latency per
    /// replication hop.
    pending: EventQueue<(usize, PacketRef, u32)>,
    transfers: Vec<Transfer>,
    /// Scratch for workload polling, reused across every poll of the run.
    poll_buf: Vec<MessageRequest>,
    /// Total link traversals (observability; the perf harness reads deltas).
    flit_hops: u64,
    /// Precomputed `link_target` per `node * 3 + out`.
    targets: Vec<(u32, u8)>,
    /// Sender-side credits per `(node * 3 + out) * vcs + vc` (exact mirror
    /// of downstream free space minus in-flight flits, as in `quarc_net`).
    credits: Vec<u32>,
    /// Link id feeding input `node * 3 + in_port` (inverse of `targets`).
    feeder: Vec<u32>,
    /// O(1) counter twins for `backlog()` / `quiesced()`.
    inject_backlog: usize,
    buffered_flits: u64,
    link_occupancy: u64,
}

impl SpidergonNetwork {
    /// Build a network from a validated configuration.
    pub fn new(cfg: NocConfig) -> Self {
        assert_eq!(cfg.kind, TopologyKind::Spidergon, "config is not a Spidergon network");
        cfg.validate().expect("invalid configuration");
        let topo = SpidergonTopology::new(cfg.n);
        let nodes = (0..cfg.n).map(|_| NodeState::new(cfg.vcs, cfg.buffer_depth)).collect();
        let links = (0..cfg.n * 3).map(|_| Link::new(cfg.link_latency)).collect();
        let targets: Vec<(u32, u8)> = (0..cfg.n * 3)
            .map(|i| {
                let (to, tin) =
                    topo.link_target(NodeId::new(i / 3), NET_OUT[i % 3]).expect("network output");
                (to.index() as u32, tin.index() as u8)
            })
            .collect();
        let mut feeder = vec![u32::MAX; cfg.n * 3];
        for (lid, &(to, tin)) in targets.iter().enumerate() {
            feeder[to as usize * 3 + tin as usize] = lid as u32;
        }
        assert!(feeder.iter().all(|&f| f != u32::MAX), "every input port has a feeder");
        SpidergonNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            nodes,
            links,
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            packets: PacketTable::new(),
            pending: EventQueue::new(),
            transfers: Vec::new(),
            poll_buf: Vec::new(),
            flit_hops: 0,
            credits: vec![cfg.buffer_depth as u32; cfg.n * 3 * cfg.vcs],
            feeder,
            targets,
            inject_backlog: 0,
            buffered_flits: 0,
            link_occupancy: 0,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Resolve the route of a header at `node` into a hop plan.
    fn plan_header(&self, node: usize, meta: &PacketMeta, cur_vc: VcId) -> HopPlan {
        match spidergon_route(self.topo.ring(), NodeId::new(node), meta.dst) {
            RouteAction::Deliver => HopPlan { out: EJECT, out_vc: INJECTION_VC },
            RouteAction::Forward(out) => {
                let out_vc = match out {
                    SpiOut::RimCw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Cw, cur_vc)
                    }
                    SpiOut::RimCcw => {
                        vc_after_rim_hop(self.topo.ring(), NodeId::new(node), RingDir::Ccw, cur_vc)
                    }
                    SpiOut::Cross => vc_for_cross_hop(),
                    SpiOut::Eject => unreachable!(),
                };
                HopPlan { out: out.index(), out_vc }
            }
            RouteAction::DeliverAndForward(_) => {
                unreachable!("Spidergon switches cannot clone (§2.2)")
            }
        }
    }

    /// Free downstream space for `(node, out, vc)`, minus in-flight flits.
    /// One read of the sender-side credit counter.
    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        self.credits[(node * 3 + out) * self.cfg.vcs + vc.index()] as usize
    }

    /// Wormhole ownership check for link outputs and the ejection port.
    fn ownership_allows(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        let owner = if plan.out == EJECT {
            self.nodes[node].eject_owner
        } else {
            self.nodes[node].out_owner[plan.out][plan.out_vc.index()]
        };
        match owner {
            Some(o) => o == src && !is_header,
            None => is_header,
        }
    }

    /// Whether the resources of `plan` are available to `src` this cycle.
    fn feasible(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        if !self.ownership_allows(node, plan, src, is_header) {
            return false;
        }
        plan.out == EJECT || self.downstream_free(node, plan.out, plan.out_vc) > 0
    }

    /// Request of network input port `p` at `node`.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        // Fixed-size scratch: runs 3·n times per cycle, must not allocate.
        let mut feasible: [Option<PortReq>; MAX_VCS] = [None; MAX_VCS];
        for vc in 0..vcs {
            let Some(head) = self.nodes[node].in_buf.front(p * vcs + vc).copied() else {
                continue;
            };
            let plan = match self.nodes[node].in_route[p][vc] {
                Some(plan) => {
                    debug_assert!(!head.is_header());
                    plan
                }
                None => {
                    assert!(head.is_header(), "wormhole violated on {p}/{vc}");
                    self.plan_header(node, self.packets.meta(head.packet), VcId(vc as u8))
                }
            };
            let src = Src::Net { port: p, vc };
            if self.feasible(node, plan, src, head.is_header()) {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.nodes[node].rr_in_vc[p].pick(vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    /// Request of the single local queue at `node`.
    fn gather_local_port(&self, node: usize) -> Option<PortReq> {
        let head = self.nodes[node].inject_q.front()?;
        let plan = match self.nodes[node].inject_plan {
            Some(plan) => {
                debug_assert!(!head.is_header());
                plan
            }
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                let meta = self.packets.meta(head.packet);
                debug_assert_ne!(meta.dst, NodeId::new(node), "self-message injected");
                self.plan_header(node, meta, INJECTION_VC)
            }
        };
        let src = Src::Local;
        self.feasible(node, plan, src, head.is_header()).then_some(PortReq {
            src,
            plan,
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    /// Read-only arbitration over one router.
    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        // Phase 1: VC arbiter per input port.
        let mut reqs: [Option<PortReq>; 4] = [None; 4];
        for p in 0..3 {
            reqs[p] = self.gather_net_port(node, p);
        }
        reqs[3] = self.gather_local_port(node);

        // Phase 2: per-output grant over the topology's feeder lists.
        for o in 0..4 {
            let feeders: &[SpiIn] = if o == EJECT {
                SpidergonTopology::feeders(SpiOut::Eject)
            } else {
                SpidergonTopology::feeders(NET_OUT[o])
            };
            let winner = self.nodes[node].rr_out[o].pick(feeders.len(), |k| {
                let slot = feeders[k].index();
                matches!(reqs[slot], Some(r) if r.plan.out == o)
            });
            if let Some(k) = winner {
                let slot = feeders[k].index();
                let req = reqs[slot].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }
    }

    /// Apply one planned transfer.
    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let vcs = self.cfg.vcs;
                let flit = self.nodes[node].in_buf.pop(port * vcs + vc).expect("planned flit");
                self.buffered_flits -= 1;
                // The freed slot becomes a credit at the upstream sender.
                self.credits[self.feeder[node * 3 + port] as usize * vcs + vc] += 1;
                if t.req.is_header {
                    self.nodes[node].in_route[port][vc] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].in_route[port][vc] = None;
                }
                flit
            }
            Src::Local => {
                let flit = self.nodes[node].inject_q.pop_front().expect("planned flit");
                self.inject_backlog -= 1;
                if t.req.is_header {
                    self.nodes[node].inject_plan = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].inject_plan = None;
                }
                flit
            }
        };

        if t.req.plan.out == EJECT {
            if t.req.is_header {
                self.nodes[node].eject_owner = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].eject_owner = None;
            }
            // The single arbitrated ejection port is the delivery site: it
            // streams one packet at a time (eject_owner pins it).
            self.metrics.record_flit_delivery(
                now,
                NodeId::new(node),
                node,
                &flit,
                self.packets.meta(flit.packet),
            );
            if t.req.is_tail {
                let meta = *self.packets.meta(flit.packet);
                // Broadcast-by-unicast: the tail of a chain packet triggers
                // the replication logic, which rewrites the header and
                // re-injects through the single local port one cycle later
                // (§2.2). The continuations are fresh packets, interned now
                // and serialised at their due cycle.
                if meta.class.is_chain() {
                    for seed in chain_continuations(self.topo.ring(), NodeId::new(node), &meta) {
                        let pref = self.packets.insert(PacketMeta {
                            packet: self.ids.packet(),
                            class: seed.class,
                            dst: seed.dst,
                            bitstring: seed.remaining,
                            dir: seed.dir,
                            ..meta
                        });
                        self.pending.push(now + 1, (node, pref, meta.len));
                    }
                }
                // The ejected packet has fully left the network: retire it.
                self.packets.release(flit.packet);
            }
        } else {
            let o = t.req.plan.out;
            let vc = t.req.plan.out_vc;
            if t.req.is_header {
                self.nodes[node].out_owner[o][vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].out_owner[o][vc.index()] = None;
            }
            self.flit_hops += 1;
            self.link_occupancy += 1;
            self.credits[(node * 3 + o) * self.cfg.vcs + vc.index()] -= 1;
            self.links[node * 3 + o].send(TaggedFlit { flit, vc });
        }
    }

    /// Total flits queued at source transceivers. O(1).
    pub fn backlog(&self) -> usize {
        self.inject_backlog
    }

    /// Packets currently interned (in flight or awaiting re-injection).
    pub fn live_packets(&self) -> usize {
        self.packets.live()
    }
}

impl NocSim for SpidergonNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        let now = self.clock.now();

        // (a) Link arrivals.
        let vcs = self.cfg.vcs;
        for lid in 0..self.cfg.n * 3 {
            if let Some(tf) = self.links[lid].step() {
                let (to, tin) = self.targets[lid];
                self.nodes[to as usize].in_buf.push(tin as usize * vcs + tf.vc.index(), tf.flit);
                self.link_occupancy -= 1;
                self.buffered_flits += 1;
            }
        }

        // (b) Re-injections from the replication logic, then new messages.
        while let Some((_, (node, pref, len))) = self.pending.pop_due(now) {
            self.inject_backlog += push_packet(&mut self.nodes[node].inject_q, pref, len);
        }
        let mut reqs = std::mem::take(&mut self.poll_buf);
        for node in 0..self.cfg.n {
            reqs.clear();
            workload.poll_into(NodeId::new(node), now, &mut reqs);
            for req in reqs.drain(..) {
                debug_assert_eq!(req.src, NodeId::new(node));
                let message = self.metrics.create_message(req.class, now);
                let (expected, flits) = spidergon_expand_into(
                    self.topo.ring(),
                    &req,
                    message,
                    &mut self.ids,
                    now,
                    &mut self.packets,
                    &mut self.nodes[node].inject_q,
                );
                self.inject_backlog += flits;
                self.metrics.set_expected(message, expected);
            }
        }
        self.poll_buf = reqs;

        // (c) Arbitration, (d) commit.
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        for node in 0..self.cfg.n {
            self.gather_node(node, &mut transfers);
        }
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;

        self.clock.tick();
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.cfg.n
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Spidergon
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    fn quiesced(&self) -> bool {
        // Counters only — O(1) per call (drain loops poll this every cycle).
        self.metrics.in_flight() == 0
            && self.inject_backlog == 0
            && self.pending.is_empty()
            && self.link_occupancy == 0
            && self.buffered_flits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;
    use quarc_core::routing::spidergon_hops;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    fn run_until_quiet(net: &mut SpidergonNetwork, wl: &mut dyn Workload, cap: u64) {
        for _ in 0..cap {
            net.step(wl);
            if net.quiesced() {
                return;
            }
        }
        panic!("network did not quiesce within {cap} cycles");
    }

    fn one_shot(n: usize, records: Vec<TraceRecord>) -> (SpidergonNetwork, TraceWorkload) {
        (SpidergonNetwork::new(NocConfig::spidergon(n)), TraceWorkload::new(n, records))
    }

    #[test]
    fn single_unicast_ideal_latency() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        let d = spidergon_hops(&SpidergonTopology::new(16).ring().clone(), NodeId(0), NodeId(3));
        let got = net.metrics().unicast_latency().mean();
        let ideal = d as f64 + 7.0 + 1.0;
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs {ideal}");
    }

    #[test]
    fn cross_route_unicast_arrives() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(7), 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 200);
        assert_eq!(net.metrics().completed(TrafficClass::Unicast), 1);
    }

    #[test]
    fn broadcast_reaches_all_nodes() {
        for n in [8usize, 16, 32] {
            let (mut net, mut wl) = one_shot(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(1), 4) }],
            );
            run_until_quiet(&mut net, &mut wl, 20_000);
            let m = net.metrics();
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
        }
    }

    #[test]
    fn broadcast_is_store_and_forward_slow() {
        // The chain re-serialises M flits at every hop: completion must cost
        // on the order of (n/2)·M cycles, far beyond the Quarc's n/4 + M.
        let n = 16;
        let m_len = 8u64;
        let (mut net, mut wl) = one_shot(
            n,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::broadcast(NodeId(0), m_len as usize),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 20_000);
        let got = net.metrics().broadcast_completion_latency().mean();
        // Longest chain: cross (1 + M−1) then (n/4 − 1) rim hops, each costing
        // a full store-and-forward of ~M cycles plus the rewrite cycle.
        let floor = (n as u64 / 4 - 1) as f64 * m_len as f64;
        assert!(got > floor, "completion {got} ≤ floor {floor}: chains not store-and-forward?");
    }

    #[test]
    fn quarc_broadcast_beats_spidergon_by_a_lot() {
        use crate::quarc_net::QuarcNetwork;
        let n = 16;
        let record =
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 8) }];
        let mut q = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wq = TraceWorkload::new(n, record.clone());
        for _ in 0..5_000 {
            q.step(&mut wq);
            if q.quiesced() {
                break;
            }
        }
        let (mut s, mut ws) = one_shot(n, record);
        run_until_quiet(&mut s, &mut ws, 20_000);
        let quarc = q.metrics().broadcast_completion_latency().mean();
        let spider = s.metrics().broadcast_completion_latency().mean();
        assert!(
            spider > 4.0 * quarc,
            "expected order-of-magnitude gap: quarc {quarc} vs spidergon {spider}"
        );
    }

    #[test]
    fn sustained_load_drains_clean() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.01, 8, 0.05, 7));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..20_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "failed to drain (possible deadlock)");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
    }

    #[test]
    fn heavy_load_does_not_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.8, 8, 0.1, 3));
        for _ in 0..3_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..1_000 {
            net.step(&mut wl);
        }
        assert!(net.metrics().flits_delivered() > before, "deadlock under overload");
    }

    #[test]
    fn deterministic_runs() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = || {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.03, 8, 0.1, 42));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (net.metrics().flits_delivered(), net.metrics().unicast_latency().mean())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multicast_as_unicasts_completes() {
        let (mut net, mut wl) = one_shot(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(NodeId(0), vec![NodeId(3), NodeId(9)], 4),
            }],
        );
        run_until_quiet(&mut net, &mut wl, 1_000);
        assert_eq!(net.metrics().completed(TrafficClass::Multicast), 1);
    }
}
