//! End-to-end reliable delivery: the source-side ack/timeout/retransmit
//! state machine shared by all four network models.
//!
//! The fabric itself stays lossy under a [`FaultPlan`](quarc_core::config::FaultPlan)
//! — dead and lossy links drop packets at the switch level exactly as
//! before. What this module adds is the *end-to-end* recovery loop of a
//! [`RecoveryPolicy`](quarc_core::config::RecoveryPolicy): every receiver
//! acknowledges each message tail with a single-flit ACK packet injected
//! into the same fabric (so acks contend for the same links and can
//! themselves be dropped), and every source keeps an outstanding-message
//! window. When an ack deadline lapses, the source retransmits **to exactly
//! the unacknowledged receiver subset** with exponential backoff and seeded
//! jitter; after `max_retries` fruitless attempts the still-unserved
//! receivers are written off through
//! [`Metrics::record_lost_receivers`](crate::metrics::Metrics::record_lost_receivers),
//! so an unreachable receiver set can never wedge `quiesced()`.
//!
//! ## Determinism
//!
//! All state here is a pure function of the simulation history: deadlines
//! derive from `policy.backoff(attempt)` plus a jitter drawn from a
//! `DetRng` seeded only by `policy.seed`, and jitter draws happen in
//! deterministic event order (entry creation and timer expiry both happen
//! at fixed points of the cycle loop). With `RecoveryPolicy::NONE` the
//! networks never construct per-message entries, never draw jitter and
//! never branch into this module beyond one `enabled()` check — the
//! equivalence goldens pin that byte-for-byte.
//!
//! ## Who owns what
//!
//! [`Metrics`](crate::metrics::Metrics) remains the single source of truth
//! for the receiver ledger (`delivered + lost == expected`). This module
//! only *decides*: which delivery is fresh vs duplicate
//! ([`RecoveryState::on_data_header`]), which ack closes a window
//! ([`RecoveryState::on_ack`]), and when to retransmit or give up
//! ([`RecoveryState::pop_action`]). The owning network translates those
//! decisions into metric calls, so loss accounting still happens exactly
//! once per receiver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use quarc_core::bits::{BitSlab, Bits};
use quarc_core::config::RecoveryPolicy;
use quarc_core::flit::TrafficClass;
use quarc_core::ids::{MessageId, NodeId};
use quarc_engine::{Cycle, DetRng};
use quarc_workloads::MessageRequest;

/// Split a slab-issued [`MessageId`] into `(slot, generation)` — the same
/// layout [`Metrics`](crate::metrics::Metrics) allocates, which is what
/// lets recovery entries live in a slot-indexed vector with no hashing on
/// the per-flit path.
#[inline]
fn slot_of(message: MessageId) -> (usize, u32) {
    ((message.0 & 0xFFFF_FFFF) as usize, (message.0 >> 32) as u32)
}

/// Lifecycle of one outstanding-message entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// No message outstanding in this slot (initial, or fully acked).
    Idle,
    /// Waiting for acks; a timer is scheduled.
    Open,
    /// Retries exhausted; unserved receivers were written off. Late
    /// deliveries and acks for this generation are duplicates.
    WrittenOff,
}

/// Source-side record of one in-flight message's receiver window.
#[derive(Debug, Clone, Copy)]
struct RecEntry {
    /// Generation tag of the [`MessageId`] this entry belongs to; a stale
    /// id (slot recycled) can never touch the new occupant.
    gen: u32,
    state: EntryState,
    src: NodeId,
    class: TrafficClass,
    len: u32,
    created_at: Cycle,
    /// Retransmissions issued so far (0 = only the original send).
    attempt: u32,
    /// Receivers that have not acknowledged yet (node-indexed bitstring).
    pending: Bits,
    /// Receivers that have received the message at least once. `pending`
    /// can be wider than `¬served` — a served receiver whose ack was lost
    /// stays pending and gets a duplicate it re-acks.
    served: Bits,
    /// Cached popcount of `pending`.
    pending_count: u32,
    /// The deadline of this entry's live timer; heap entries with any
    /// other deadline are stale and skipped.
    deadline: Cycle,
}

/// What a delivered data header turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataDelivery {
    /// First time this receiver sees the message: record it normally. If
    /// `recovered`, a retransmission had already been issued when it
    /// landed — the receiver counts toward
    /// [`Metrics::recovered_receivers`](crate::metrics::Metrics::recovered_receivers).
    Fresh {
        /// The message had been retransmitted at least once before this
        /// receiver was first served.
        recovered: bool,
    },
    /// The receiver was already served (late original after a retransmit,
    /// or an over-wide retransmission after a lost ack): drain the packet,
    /// suppress all metric and probe recording, but still re-ack the tail.
    Dup,
}

/// A due decision popped from the timer heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Re-inject `message` from `src` to the targets written into the
    /// caller's scratch vector (the unacked subset, in node order).
    Retry {
        /// The original message id — retransmitted packets carry it, so
        /// deliveries and acks fold into the same ledger entry.
        message: MessageId,
        /// The sending node (retransmissions originate at the source PE).
        src: NodeId,
        /// Original traffic class; collective retransmissions are narrowed
        /// to a multicast over the unserved subset by the caller.
        class: TrafficClass,
        /// Original message length in flits.
        len: u32,
        /// 1-based retransmission number (`attempt == 1` is the first
        /// retry).
        attempt: u32,
    },
    /// Retries are exhausted: `lost` receivers (pending and never served)
    /// must be written off via `record_lost_receivers` so the message
    /// terminates.
    Exhaust {
        /// The message whose window is being closed.
        message: MessageId,
        /// The sending node (for the probe's Expire event).
        src: NodeId,
        /// Original traffic class of the message.
        class: TrafficClass,
        /// Receivers never served by any attempt. Zero when every receiver
        /// was served but some acks never came home — the message already
        /// completed in metrics and needs no write-off.
        lost: usize,
    },
}

/// The per-network recovery engine: an outstanding-message window per
/// source-issued message, a deadline heap, and the node-indexed pending /
/// served bitstrings (backed by this struct's own [`BitSlab`]).
#[derive(Debug)]
pub struct RecoveryState {
    policy: RecoveryPolicy,
    nodes: usize,
    /// Entries indexed by message slot (mirrors the metrics track slab).
    entries: Vec<RecEntry>,
    /// Min-heap of `(deadline, slot, gen)`; entries are lazily invalidated
    /// by comparing against `RecEntry::deadline` at pop time.
    timers: BinaryHeap<Reverse<(Cycle, u32, u32)>>,
    /// Backing storage for `pending` / `served` bitstrings.
    bits: BitSlab,
    /// Jitter substream; drawn once per scheduled deadline.
    rng: DetRng,
    /// Open entries — the count `quiesced()` and the stall watchdog read.
    open: usize,
}

impl RecoveryState {
    /// Recovery engine for a `nodes`-node network. With a disabled policy
    /// this allocates nothing and every hook is a single false branch.
    pub fn new(policy: RecoveryPolicy, nodes: usize) -> RecoveryState {
        let bits = if policy.enabled() { BitSlab::new(nodes) } else { BitSlab::inline_only() };
        RecoveryState {
            policy,
            nodes,
            entries: Vec::new(),
            timers: BinaryHeap::new(),
            bits,
            rng: DetRng::new(policy.seed),
            open: 0,
        }
    }

    /// Whether the policy is active (the one branch disabled runs pay).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// Messages still waiting for acks or a retransmission deadline. Keeps
    /// `quiesced()` honest (an empty network with an armed timer is not
    /// done) and counts as watchdog progress (a pending retransmit is not
    /// a stall).
    #[inline]
    pub fn pending(&self) -> u64 {
        self.open as u64
    }

    /// Draw the jitter for one scheduled deadline.
    fn jitter(&mut self) -> u64 {
        if self.policy.jitter == 0 {
            0
        } else {
            self.rng.below(self.policy.jitter as usize) as u64
        }
    }

    /// Open the receiver window of a freshly injected message. Must be
    /// called with the same request the network expanded, after
    /// `set_expected`; `expected` is the receiver count the expansion
    /// reported, cross-checked against the pending set built here.
    pub fn on_send(
        &mut self,
        message: MessageId,
        req: &MessageRequest,
        now: Cycle,
        expected: usize,
    ) {
        let (slot, gen) = slot_of(message);
        if slot >= self.entries.len() {
            self.entries.resize(
                slot + 1,
                RecEntry {
                    gen: 0,
                    state: EntryState::Idle,
                    src: NodeId(0),
                    class: TrafficClass::Unicast,
                    len: 0,
                    created_at: 0,
                    attempt: 0,
                    pending: Bits::ZERO,
                    served: Bits::ZERO,
                    pending_count: 0,
                    deadline: 0,
                },
            );
        }
        // The metrics slab recycles a slot the moment the last receiver
        // delivers — which can precede the last *ack* — so an Open entry
        // here is a fully-served window whose acks are still in flight.
        // Close it; its remaining acks will be drained as stale.
        if self.entries[slot].state == EntryState::Open {
            let old = &mut self.entries[slot];
            let (p, s) = (old.pending, old.served);
            old.state = EntryState::Idle;
            self.bits.release(p);
            self.bits.release(s);
            self.open -= 1;
        }

        let mut pending = Bits::ZERO;
        match req.class {
            TrafficClass::Unicast => {
                let dst = req.dst.expect("unicast request has a destination");
                self.bits.set_bit(&mut pending, dst.index());
            }
            TrafficClass::Broadcast => {
                for i in 0..self.nodes {
                    if i != req.src.index() {
                        self.bits.set_bit(&mut pending, i);
                    }
                }
            }
            TrafficClass::Multicast => {
                for &t in &req.targets {
                    if t != req.src {
                        self.bits.set_bit(&mut pending, t.index());
                    }
                }
            }
            other => unreachable!("recovery window for control class {other}"),
        }
        let pending_count = self.bits.popcount(pending);
        debug_assert_eq!(
            pending_count as usize, expected,
            "recovery window disagrees with expansion for {message}"
        );
        let deadline = now + self.policy.backoff(0) + self.jitter();
        self.entries[slot] = RecEntry {
            gen,
            state: EntryState::Open,
            src: req.src,
            class: req.class,
            len: u32::try_from(req.len).expect("message length fits u32"),
            created_at: now,
            attempt: 0,
            pending,
            served: Bits::ZERO,
            pending_count,
            deadline,
        };
        self.timers.push(Reverse((deadline, slot as u32, gen)));
        self.open += 1;
    }

    /// Classify a data header committed for delivery at `node`: the first
    /// arrival per receiver is fresh, everything after (and anything for a
    /// stale generation or a written-off window) is a duplicate to drain
    /// silently.
    pub fn on_data_header(&mut self, message: MessageId, node: NodeId) -> DataDelivery {
        let (slot, gen) = slot_of(message);
        if slot >= self.entries.len() {
            return DataDelivery::Dup;
        }
        let entry = &mut self.entries[slot];
        if entry.gen != gen || entry.state != EntryState::Open {
            return DataDelivery::Dup;
        }
        if self.bits.bit_at(entry.served, node.index()) {
            return DataDelivery::Dup;
        }
        let mut served = entry.served;
        self.bits.set_bit(&mut served, node.index());
        self.entries[slot].served = served;
        DataDelivery::Fresh { recovered: self.entries[slot].attempt > 0 }
    }

    /// Fold an absorbed ACK from `receiver` into the window. Returns the
    /// acknowledged message's creation cycle when this ack is the first
    /// from that receiver (for the round-trip latency sample); `None` for
    /// stale or duplicate acks, which the caller drains without recording.
    pub fn on_ack(&mut self, message: MessageId, receiver: NodeId, now: Cycle) -> Option<Cycle> {
        let _ = now;
        let (slot, gen) = slot_of(message);
        if slot >= self.entries.len() {
            return None;
        }
        let entry = &mut self.entries[slot];
        if entry.gen != gen || entry.state != EntryState::Open {
            return None;
        }
        if !self.bits.bit_at(entry.pending, receiver.index()) {
            return None;
        }
        let mut pending = entry.pending;
        self.bits.clear_bit(&mut pending, receiver.index());
        let entry = &mut self.entries[slot];
        entry.pending = pending;
        entry.pending_count -= 1;
        let created_at = entry.created_at;
        if entry.pending_count == 0 {
            let (p, s) = (entry.pending, entry.served);
            entry.state = EntryState::Idle;
            self.bits.release(p);
            self.bits.release(s);
            self.open -= 1;
        }
        Some(created_at)
    }

    /// Pop the next due decision, if any. `targets` is caller-owned
    /// scratch; on a [`RecoveryAction::Retry`] it holds the unacked
    /// receiver subset in node order. Call in a loop until `None` each
    /// cycle (retries are rare, the common case is one peek).
    pub fn pop_action(&mut self, now: Cycle, targets: &mut Vec<NodeId>) -> Option<RecoveryAction> {
        loop {
            let &Reverse((deadline, slot, gen)) = self.timers.peek()?;
            if deadline > now {
                return None;
            }
            self.timers.pop();
            let slot = slot as usize;
            let entry = &self.entries[slot];
            // Lazy invalidation: the entry moved on (acked shut, slot
            // recycled, or rescheduled to a later deadline).
            if entry.gen != gen || entry.state != EntryState::Open || entry.deadline != deadline {
                continue;
            }
            let message = MessageId((gen as u64) << 32 | slot as u64);
            if entry.attempt >= self.policy.max_retries {
                // Give up: write off receivers never served by any attempt.
                // Served-but-unacked receivers are already in the delivered
                // ledger — only the never-served ones are lost.
                let mut lost = 0usize;
                for i in 0..self.nodes {
                    if self.bits.bit_at(entry.pending, i) && !self.bits.bit_at(entry.served, i) {
                        lost += 1;
                    }
                }
                let entry = &mut self.entries[slot];
                let (p, s) = (entry.pending, entry.served);
                let (src, class) = (entry.src, entry.class);
                entry.state = EntryState::WrittenOff;
                self.bits.release(p);
                self.bits.release(s);
                self.open -= 1;
                return Some(RecoveryAction::Exhaust { message, src, class, lost });
            }
            let attempt = entry.attempt + 1;
            targets.clear();
            for i in 0..self.nodes {
                if self.bits.bit_at(entry.pending, i) {
                    targets.push(NodeId(i as u32));
                }
            }
            debug_assert!(!targets.is_empty(), "open window with empty pending set");
            let (src, class, len) = (entry.src, entry.class, entry.len);
            let next = now + self.policy.backoff(attempt) + self.jitter();
            let entry = &mut self.entries[slot];
            entry.attempt = attempt;
            entry.deadline = next;
            self.timers.push(Reverse((next, slot as u32, gen)));
            return Some(RecoveryAction::Retry { message, src, class, len, attempt });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy { seed: 7, ack_timeout: 100, max_retries: 2, jitter: 0 }
    }

    fn mid(slot: u64, gen: u64) -> MessageId {
        MessageId(gen << 32 | slot)
    }

    #[test]
    fn unicast_window_closes_on_first_ack() {
        let mut r = RecoveryState::new(policy(), 8);
        let m = mid(0, 0);
        r.on_send(m, &MessageRequest::unicast(NodeId(1), NodeId(5), 4), 10, 1);
        assert_eq!(r.pending(), 1);
        assert_eq!(r.on_data_header(m, NodeId(5)), DataDelivery::Fresh { recovered: false });
        assert_eq!(r.on_data_header(m, NodeId(5)), DataDelivery::Dup);
        assert_eq!(r.on_ack(m, NodeId(5), 30), Some(10));
        assert_eq!(r.on_ack(m, NodeId(5), 31), None, "duplicate ack is stale");
        assert_eq!(r.pending(), 0);
        let mut scratch = Vec::new();
        assert_eq!(r.pop_action(1_000_000, &mut scratch), None, "closed window fires no timer");
    }

    #[test]
    fn timeout_retries_exactly_the_unacked_subset_then_exhausts() {
        let mut r = RecoveryState::new(policy(), 8);
        let m = mid(0, 0);
        let req = MessageRequest::multicast(NodeId(0), vec![NodeId(2), NodeId(3), NodeId(6)], 4);
        r.on_send(m, &req, 0, 3);
        // Node 3 delivered and acked; 2 delivered but its ack was lost; 6
        // never served.
        r.on_data_header(m, NodeId(3));
        r.on_data_header(m, NodeId(2));
        assert_eq!(r.on_ack(m, NodeId(3), 20), Some(0));

        let mut scratch = Vec::new();
        assert_eq!(r.pop_action(99, &mut scratch), None, "deadline not due yet");
        match r.pop_action(100, &mut scratch) {
            Some(RecoveryAction::Retry { message, src, attempt, .. }) => {
                assert_eq!(message, m);
                assert_eq!(src, NodeId(0));
                assert_eq!(attempt, 1);
                assert_eq!(scratch, vec![NodeId(2), NodeId(6)], "only the unacked subset");
            }
            other => panic!("expected first retry, got {other:?}"),
        }
        // Backoff doubles: attempt 1 rescheduled at 100 + 200.
        assert_eq!(r.pop_action(299, &mut scratch), None);
        match r.pop_action(300, &mut scratch) {
            Some(RecoveryAction::Retry { attempt: 2, .. }) => {}
            other => panic!("expected second retry, got {other:?}"),
        }
        // max_retries = 2: the next expiry exhausts. Node 6 was never
        // served (lost); node 2 was served, only its ack is missing.
        match r.pop_action(10_000, &mut scratch) {
            Some(RecoveryAction::Exhaust { message, src, lost, .. }) => {
                assert_eq!(message, m);
                assert_eq!(src, NodeId(0));
                assert_eq!(lost, 1);
            }
            other => panic!("expected exhaust, got {other:?}"),
        }
        assert_eq!(r.pending(), 0);
        assert_eq!(r.on_data_header(m, NodeId(6)), DataDelivery::Dup, "written-off is dup");
        assert_eq!(r.on_ack(m, NodeId(2), 10_001), None, "written-off ack is stale");
    }

    #[test]
    fn slot_reuse_with_inflight_acks_closes_the_old_window() {
        let mut r = RecoveryState::new(policy(), 8);
        let old = mid(0, 0);
        r.on_send(old, &MessageRequest::unicast(NodeId(1), NodeId(5), 4), 0, 1);
        r.on_data_header(old, NodeId(5));
        // Metrics recycled slot 0 before the ack came home; the new
        // occupant opens over the same slot under a fresh generation.
        let fresh = mid(0, 1);
        r.on_send(fresh, &MessageRequest::unicast(NodeId(2), NodeId(6), 4), 50, 1);
        assert_eq!(r.pending(), 1, "old window force-closed, new one open");
        assert_eq!(r.on_ack(old, NodeId(5), 60), None, "stale-generation ack drained");
        assert_eq!(r.on_ack(fresh, NodeId(6), 70), Some(50));
        assert_eq!(r.pending(), 0);
        let mut scratch = Vec::new();
        assert_eq!(r.pop_action(1_000_000, &mut scratch), None, "no timer survives");
    }

    #[test]
    fn broadcast_window_covers_all_but_the_source() {
        let mut r = RecoveryState::new(policy(), 4);
        let m = mid(0, 0);
        r.on_send(m, &MessageRequest::broadcast(NodeId(1), 4), 0, 3);
        for n in [0u32, 2, 3] {
            assert_eq!(r.on_data_header(m, NodeId(n)), DataDelivery::Fresh { recovered: false });
            r.on_ack(m, NodeId(n), 10);
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn fresh_delivery_after_a_retry_counts_as_recovered() {
        let mut r = RecoveryState::new(policy(), 8);
        let m = mid(0, 0);
        r.on_send(m, &MessageRequest::unicast(NodeId(0), NodeId(3), 4), 0, 1);
        let mut scratch = Vec::new();
        assert!(matches!(
            r.pop_action(100, &mut scratch),
            Some(RecoveryAction::Retry { attempt: 1, .. })
        ));
        assert_eq!(r.on_data_header(m, NodeId(3)), DataDelivery::Fresh { recovered: true });
    }

    #[test]
    fn jitter_spreads_deadlines_deterministically() {
        let p = RecoveryPolicy { seed: 9, ack_timeout: 100, max_retries: 1, jitter: 64 };
        let mut a = RecoveryState::new(p, 8);
        let mut b = RecoveryState::new(p, 8);
        a.on_send(mid(0, 0), &MessageRequest::unicast(NodeId(0), NodeId(1), 4), 0, 1);
        b.on_send(mid(0, 0), &MessageRequest::unicast(NodeId(0), NodeId(1), 4), 0, 1);
        // Identical seeds and event order: identical firing cycles.
        let fire = |r: &mut RecoveryState| {
            let mut s = Vec::new();
            (0..10_000u64)
                .find(|&t| matches!(r.pop_action(t, &mut s), Some(RecoveryAction::Retry { .. })))
        };
        let cycle = fire(&mut a);
        assert_eq!(cycle, fire(&mut b));
        let cycle = cycle.expect("retry fires");
        assert!((100..164).contains(&cycle), "timeout plus jitter in [0, 64): {cycle}");
    }
}
