//! Active-set correctness: every network's worklist-scheduled hot path must
//! be **bit-identical** to a naive full scan.
//!
//! Each topology is stepped in lockstep with a full-scan twin (the
//! `set_full_scan(true)` oracle re-arbitrates every router, steps every link
//! and polls every source each cycle) over random workloads; the running
//! metric fingerprints must agree at every checkpoint, through drain, at
//! minimal buffer depth, and at large n. This pins the scheduling
//! invariants of `crates/sim/HOTPATH.md` — a node or link the active set
//! skips must be one the full scan would have found idle.

use proptest::prelude::*;
use quarc_core::config::NocConfig;
use quarc_core::ids::NodeId;
use quarc_engine::DetRng;
use quarc_sim::driver::NocSim;
use quarc_sim::{MeshNetwork, QuarcNetwork, SpidergonNetwork, TorusNetwork};
use quarc_workloads::{
    MessageRequest, Synthetic, SyntheticConfig, TraceRecord, TraceWorkload, Workload,
};

/// Everything the figures consume, as exact bits.
fn fingerprint(net: &dyn NocSim) -> (u64, u64, u64, usize, u64, u64, u64, usize, bool) {
    let m = net.metrics();
    (
        net.now(),
        m.flits_delivered(),
        m.completed_total(),
        m.in_flight(),
        net.flit_hops(),
        m.unicast_latency().mean().to_bits(),
        m.broadcast_completion_latency().mean().to_bits(),
        net.source_backlog(),
        net.quiesced(),
    )
}

/// Step `active` (worklists) and `oracle` (full scan) in lockstep under
/// identically-seeded workloads, checking the fingerprints at every
/// checkpoint, then drain both and compare the final state.
fn lockstep(
    active: &mut dyn NocSim,
    oracle: &mut dyn NocSim,
    wl_a: &mut dyn Workload,
    wl_o: &mut dyn Workload,
    cycles: u64,
    label: &str,
) {
    for c in 0..cycles {
        active.step(wl_a);
        oracle.step(wl_o);
        if c % 64 == 0 {
            assert_eq!(fingerprint(active), fingerprint(oracle), "{label}: diverged at cycle {c}");
        }
    }
    let n = active.num_nodes();
    let mut silence_a = TraceWorkload::new(n, vec![]);
    let mut silence_o = TraceWorkload::new(n, vec![]);
    for _ in 0..200_000u64 {
        if active.quiesced() && oracle.quiesced() {
            break;
        }
        active.step(&mut silence_a);
        oracle.step(&mut silence_o);
    }
    assert!(active.quiesced() && oracle.quiesced(), "{label}: failed to drain");
    assert_eq!(fingerprint(active), fingerprint(oracle), "{label}: diverged after drain");
}

/// A random mixed-class trace (unicast/broadcast/multicast) for lockstep
/// runs — same shape as the conservation proptests.
fn random_records(n: usize, count: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(seed);
    let mut records = Vec::with_capacity(count);
    let mut cycle = 0u64;
    for _ in 0..count {
        cycle += rng.below(25) as u64;
        let src = NodeId::new(rng.below(n));
        let len = 2 + rng.below(8);
        let request = match rng.below(5) {
            0 => MessageRequest::broadcast(src, len),
            1 => {
                let k = 1 + rng.below(n / 2);
                let mut targets = Vec::new();
                for _ in 0..k {
                    let t = NodeId::new(rng.below_excluding(n, src.index()));
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                MessageRequest::multicast(src, targets, len)
            }
            _ => {
                MessageRequest::unicast(src, NodeId::new(rng.below_excluding(n, src.index())), len)
            }
        };
        records.push(TraceRecord { cycle, request });
    }
    records
}

/// Build the four (active, oracle) pairs behind one closure so each topology
/// test stays a one-liner. Both sides run with the full probe — profiler,
/// counter sampling, flit tracing — at full cadence: lockstep equality under
/// instrumentation is the observe-never-mutate invariant at its sharpest,
/// since the active set and the full scan take different code paths through
/// every probed phase.
macro_rules! lockstep_pair {
    ($ty:ident, $cfg:expr) => {{
        let cfg = $cfg;
        let mut active = $ty::new(cfg);
        let mut oracle = $ty::new(cfg);
        oracle.set_full_scan(true);
        NocSim::probe_mut(&mut active).configure(quarc_sim::ProbeConfig::all(1 << 10));
        NocSim::probe_mut(&mut oracle).configure(quarc_sim::ProbeConfig::all(1 << 10));
        (active, oracle)
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Quarc: Bernoulli traffic with collectives, through drain.
    #[test]
    fn quarc_active_set_matches_full_scan(
        seed in any::<u64>(),
        rate in prop_oneof![Just(0.01f64), Just(0.08)],
        depth in prop_oneof![Just(1usize), Just(4)],
    ) {
        let (mut a, mut o) = lockstep_pair!(QuarcNetwork, NocConfig::quarc(16).with_buffer_depth(depth));
        let cfg = SyntheticConfig::paper(rate, 6, 0.1, seed);
        let (mut wa, mut wo) = (Synthetic::new(16, cfg), Synthetic::new(16, cfg));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 1_200, "quarc/synthetic");
    }

    /// Spidergon: replication chains are an extra event source the worklists
    /// must track.
    #[test]
    fn spidergon_active_set_matches_full_scan(
        seed in any::<u64>(),
        depth in prop_oneof![Just(1usize), Just(4)],
    ) {
        let (mut a, mut o) =
            lockstep_pair!(SpidergonNetwork, NocConfig::spidergon(16).with_buffer_depth(depth));
        let cfg = SyntheticConfig::paper(0.01, 6, 0.05, seed);
        let (mut wa, mut wo) = (Synthetic::new(16, cfg), Synthetic::new(16, cfg));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 1_200, "spidergon/synthetic");
    }

    /// Mesh: multicast-tree traces at minimal buffering.
    #[test]
    fn mesh_active_set_matches_full_scan(
        seed in any::<u64>(),
        depth in prop_oneof![Just(1usize), Just(4)],
    ) {
        let (mut a, mut o) = lockstep_pair!(MeshNetwork, NocConfig::mesh(16).with_buffer_depth(depth));
        let records = random_records(16, 25, seed);
        let (mut wa, mut wo) =
            (TraceWorkload::new(16, records.clone()), TraceWorkload::new(16, records));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 800, "mesh/trace");
    }

    /// Torus: wrap rings + dateline VCs at buffer_depth 1, the tightest
    /// credit regime the dateline scheme supports.
    #[test]
    fn torus_active_set_matches_full_scan(
        seed in any::<u64>(),
    ) {
        let (mut a, mut o) = lockstep_pair!(TorusNetwork, NocConfig::torus(16).with_buffer_depth(1));
        let records = random_records(16, 25, seed);
        let (mut wa, mut wo) =
            (TraceWorkload::new(16, records.clone()), TraceWorkload::new(16, records));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 800, "torus/trace");
    }
}

/// Random mixed-class traces on the Quarc at buffer_depth 1 (head-of-line
/// wormhole pressure everywhere), through drain.
#[test]
fn quarc_trace_lockstep_at_depth_one() {
    for seed in [3u64, 17, 99] {
        let (mut a, mut o) =
            lockstep_pair!(QuarcNetwork, NocConfig::quarc(16).with_buffer_depth(1));
        let records = random_records(16, 30, seed);
        let (mut wa, mut wo) =
            (TraceWorkload::new(16, records.clone()), TraceWorkload::new(16, records));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 900, "quarc/trace-depth1");
    }
}

/// Coherence has cross-node coupling (a read miss at A schedules a data
/// response at its home node), so it must decline the `next_due` skip and
/// still match the full scan exactly — including the memory-delay timing of
/// every response.
#[test]
fn coherence_workload_matches_full_scan() {
    use quarc_workloads::{Coherence, CoherenceConfig};
    for seed in [5u64, 21] {
        let (mut a, mut o) = lockstep_pair!(QuarcNetwork, NocConfig::quarc(16));
        let cfg =
            CoherenceConfig { request_rate: 0.05, memory_delay: 13, seed, ..Default::default() };
        let (mut wa, mut wo) = (Coherence::new(16, cfg), Coherence::new(16, cfg));
        lockstep(&mut a, &mut o, &mut wa, &mut wo, 1_500, "quarc/coherence");
    }
}

/// Running the driver protocol twice on the same network must consult the
/// second workload: the drain phase parks the poll schedule on silence, and
/// `run` has to reset it.
#[test]
fn reused_network_polls_the_next_runs_workload() {
    use quarc_sim::driver::{run, RunSpec};
    let mut net = QuarcNetwork::new(NocConfig::quarc(16));
    let spec = RunSpec { warmup: 100, measure: 1_000, drain: 2_000, ..Default::default() };
    let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.01, 4, 0.0, 1));
    let first = run(&mut net, &mut wl, &spec);
    assert!(first.unicast_samples > 0, "{first:?}");
    let mut wl2 = Synthetic::new(16, SyntheticConfig::paper(0.01, 4, 0.0, 2));
    let second = run(&mut net, &mut wl2, &spec);
    assert!(second.unicast_samples > 0, "second run generated no traffic: {second:?}");
}

/// Large-n: the active set must stay bit-deterministic (run-to-run) and
/// bit-identical to the oracle at n = 256.
#[test]
fn n256_active_set_is_deterministic_and_matches_oracle() {
    let run = |full_scan: bool| {
        let mut net = QuarcNetwork::new(NocConfig::quarc(256));
        net.set_full_scan(full_scan);
        let mut wl = Synthetic::new(256, SyntheticConfig::paper(0.002, 8, 0.05, 0xCAFE));
        for _ in 0..1_500 {
            net.step(&mut wl);
        }
        fingerprint(&net)
    };
    let a = run(false);
    let b = run(false);
    assert_eq!(a, b, "n=256 run is not deterministic");
    let oracle = run(true);
    assert_eq!(a, oracle, "n=256 active set diverged from the full scan");
}
