//! Property-based tests over the full behavioural simulator: for *any*
//! random mix of unicasts, broadcasts and multicasts on any legal network —
//! ring or grid — traffic is conserved (every message completes, exactly the
//! right number of flits reaches PEs) and the run is a pure function of its
//! seed.

use proptest::prelude::*;
use quarc_core::config::NocConfig;
use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_core::ring::Ring;
use quarc_core::topology::{GridBranch, MeshTopology};
use quarc_core::torus::TorusTopology;
use quarc_engine::DetRng;
use quarc_sim::driver::NocSim;
use quarc_sim::{MeshNetwork, QuarcNetwork, SpidergonNetwork, TorusNetwork};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

/// Deterministically generate a random message mix from a seed.
fn random_records(n: usize, count: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(seed);
    let mut records = Vec::with_capacity(count);
    let mut cycle = 0u64;
    for _ in 0..count {
        cycle += rng.below(30) as u64;
        let src = NodeId::new(rng.below(n));
        let len = 2 + rng.below(9);
        let request = match rng.below(5) {
            0 => MessageRequest::broadcast(src, len),
            1 => {
                let k = 1 + rng.below(n / 2);
                let mut targets = Vec::new();
                for _ in 0..k {
                    let t = NodeId::new(rng.below_excluding(n, src.index()));
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                MessageRequest::multicast(src, targets, len)
            }
            _ => {
                MessageRequest::unicast(src, NodeId::new(rng.below_excluding(n, src.index())), len)
            }
        };
        records.push(TraceRecord { cycle, request });
    }
    // Group per-source records in cycle order (TraceWorkload requirement) —
    // they already are, since `cycle` is globally non-decreasing.
    records
}

/// Expected flit deliveries for a record set (the conservation oracle).
fn expected_flits(n: usize, records: &[TraceRecord]) -> usize {
    let ring = Ring::new(n);
    let mut slab = quarc_core::bits::BitSlab::new(ring.quarter() + 1);
    records
        .iter()
        .map(|r| {
            let receivers = match r.request.class {
                TrafficClass::Unicast => 1,
                TrafficClass::Broadcast => n - 1,
                TrafficClass::Multicast => quarc_core::quadrant::multicast_branches(
                    &ring,
                    r.request.src,
                    &r.request.targets,
                    &mut slab,
                )
                .iter()
                .map(|b| b.deliveries.len())
                .sum(),
                _ => unreachable!(),
            };
            receivers * r.request.len
        })
        .sum()
}

/// Expected flit deliveries on a mesh/torus (branch planner as the oracle —
/// `GridBranch::receivers` counts the distinct bitstring positions).
fn expected_grid_flits(
    n: usize,
    records: &[TraceRecord],
    plan: impl Fn(NodeId, &[NodeId], &mut quarc_core::bits::BitSlab, &mut Vec<GridBranch>),
) -> usize {
    let mut branches = Vec::new();
    let mut slab = quarc_core::bits::BitSlab::new(n);
    let all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    records
        .iter()
        .map(|r| {
            let receivers = match r.request.class {
                TrafficClass::Unicast => 1,
                TrafficClass::Broadcast => {
                    plan(r.request.src, &all, &mut slab, &mut branches);
                    branches.iter().map(|b| b.receivers(&slab)).sum()
                }
                TrafficClass::Multicast => {
                    plan(r.request.src, &r.request.targets, &mut slab, &mut branches);
                    branches.iter().map(|b| b.receivers(&slab)).sum()
                }
                _ => unreachable!(),
            };
            receivers * r.request.len
        })
        .sum()
}

fn run_to_quiescence(net: &mut dyn NocSim, records: Vec<TraceRecord>) -> (u64, u64) {
    let n = net.num_nodes();
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..300_000 {
        net.step(&mut wl);
        if net.quiesced() && wl.remaining() == 0 {
            break;
        }
    }
    assert!(net.quiesced(), "network failed to drain");
    (net.metrics().flits_delivered(), net.metrics().completed_total())
}

fn run_quarc(n: usize, records: Vec<TraceRecord>) -> (u64, u64) {
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..300_000 {
        net.step(&mut wl);
        if net.quiesced() && wl.remaining() == 0 {
            break;
        }
    }
    assert!(net.quiesced(), "quarc failed to drain");
    (net.metrics().flits_delivered(), net.metrics().completed_total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation on the Quarc: every flit of every message reaches
    /// exactly its receivers, for arbitrary traffic mixes.
    #[test]
    fn quarc_conserves_random_traffic(
        n in prop_oneof![Just(8usize), Just(16)],
        count in 5usize..40,
        seed in any::<u64>(),
    ) {
        let records = random_records(n, count, seed);
        let want_flits = expected_flits(n, &records) as u64;
        let want_msgs = records.len() as u64;
        let (flits, msgs) = run_quarc(n, records);
        prop_assert_eq!(flits, want_flits);
        prop_assert_eq!(msgs, want_msgs);
    }

    /// The same is true of the Spidergon (via its replication chains).
    #[test]
    fn spidergon_conserves_random_traffic(
        n in prop_oneof![Just(8usize), Just(16)],
        count in 5usize..25,
        seed in any::<u64>(),
    ) {
        let records = random_records(n, count, seed);
        // Spidergon multicast is per-target unicasts: same receiver count,
        // so the flit oracle is unchanged.
        let want_flits = expected_flits(n, &records) as u64;
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = TraceWorkload::new(n, records);
        for _ in 0..500_000 {
            net.step(&mut wl);
            if net.quiesced() && wl.remaining() == 0 {
                break;
            }
        }
        prop_assert!(net.quiesced(), "spidergon failed to drain");
        prop_assert_eq!(net.metrics().flits_delivered(), want_flits);
    }

    /// Bit-exact determinism: the full simulator is a pure function of the
    /// record set.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>()) {
        let records = random_records(16, 20, seed);
        let a = run_quarc(16, records.clone());
        let b = run_quarc(16, records);
        prop_assert_eq!(a, b);
    }

    /// Mesh conservation under the dimension-ordered multicast tree: every
    /// collective reaches exactly its receivers (sizes where the near-square
    /// rounding is exact, so node indices and coordinates agree).
    #[test]
    fn mesh_conserves_random_traffic(
        n in prop_oneof![Just(9usize), Just(16)],
        count in 5usize..30,
        seed in any::<u64>(),
    ) {
        let records = random_records(n, count, seed);
        let topo = MeshTopology::square(n);
        let want_flits =
            expected_grid_flits(n, &records, |s, t, slab, out| topo.multicast_branches_into(s, t.iter().copied(), slab, out)) as u64;
        let want_msgs = records.len() as u64;
        let mut net = MeshNetwork::new(NocConfig::mesh(n));
        let (flits, msgs) = run_to_quiescence(&mut net, records);
        prop_assert_eq!(flits, want_flits);
        prop_assert_eq!(msgs, want_msgs);
    }

    /// Torus conservation, plus the dateline property: random collective
    /// traffic on wrap rings with minimal buffering must drain (a VC-cycle
    /// deadlock would hang the run, not just miscount).
    #[test]
    fn torus_conserves_random_traffic_on_wrap_rings(
        n in prop_oneof![Just(9usize), Just(16)],
        count in 5usize..30,
        seed in any::<u64>(),
    ) {
        let records = random_records(n, count, seed);
        let topo = TorusTopology::square(n);
        let want_flits =
            expected_grid_flits(n, &records, |s, t, slab, out| topo.multicast_branches_into(s, t.iter().copied(), slab, out)) as u64;
        let want_msgs = records.len() as u64;
        let mut net = TorusNetwork::new(NocConfig::torus(n).with_buffer_depth(1));
        let (flits, msgs) = run_to_quiescence(&mut net, records);
        prop_assert_eq!(flits, want_flits);
        prop_assert_eq!(msgs, want_msgs);
    }
}
