//! Fault injection, sim layer: the ledgers must balance and the protocol
//! must terminate under every fault class.
//!
//! Three properties hold these together:
//!
//! 1. **Drain terminates under permanent faults.** A multicast whose
//!    targets become unreachable behind a dead link cannot be delivered —
//!    the shortfall retires as `undeliverable` at header-drop time, so
//!    `quiesced()` still goes true instead of the drain spinning forever.
//! 2. **The probe ledger closes under faults.** Per message:
//!    `delivers + sum(Drop.arg lost receivers) == expected receivers`.
//! 3. **The watchdog never fires on a fault-free run** (proptest over all
//!    four topologies, including buffer depth 1): the stall detector is
//!    pure instrumentation, invisible to healthy traffic.

use proptest::prelude::*;
use quarc_core::config::{FaultPlan, NocConfig};
use quarc_core::ids::NodeId;
use quarc_engine::DetRng;
use quarc_sim::driver::NocSim;
use quarc_sim::{
    run_point_outcome, FlitEventKind, MeshNetwork, PointSpec, ProbeConfig, QuarcNetwork, RunSpec,
    SpidergonNetwork, TorusNetwork,
};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};
use std::collections::HashMap;

/// A collective-heavy trace: broadcasts and multicasts are the traffic most
/// exposed to a dead link (many receivers per message).
fn collective_records(n: usize, count: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(seed);
    let mut records = Vec::with_capacity(count);
    let mut cycle = 0u64;
    for _ in 0..count {
        cycle += rng.below(20) as u64;
        let src = NodeId::new(rng.below(n));
        let len = 2 + rng.below(6);
        let request = match rng.below(3) {
            0 => MessageRequest::broadcast(src, len),
            1 => {
                let k = 1 + rng.below(n / 2);
                let mut targets = Vec::new();
                for _ in 0..k {
                    let t = NodeId::new(rng.below_excluding(n, src.index()));
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                MessageRequest::multicast(src, targets, len)
            }
            _ => {
                MessageRequest::unicast(src, NodeId::new(rng.below_excluding(n, src.index())), len)
            }
        };
        records.push(TraceRecord { cycle, request });
    }
    records
}

/// Drive `net` over the trace, then drain under a hard cycle bound. Returns
/// whether the drain terminated — which, under permanent faults, it must.
fn run_and_drain(net: &mut dyn NocSim, records: Vec<TraceRecord>) -> bool {
    let n = net.num_nodes();
    let horizon = records.last().map_or(0, |r| r.cycle) + 1;
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..horizon {
        net.step(&mut wl);
    }
    let mut silence = TraceWorkload::new(n, vec![]);
    for _ in 0..200_000u64 {
        if net.quiesced() {
            return true;
        }
        net.step(&mut silence);
    }
    net.quiesced()
}

#[test]
fn dead_links_retire_unreachable_receivers_and_drain_still_terminates() {
    // Two permanent link failures from cycle 0 on every topology. With a
    // collective-heavy trace some receivers sit behind the dead links, so
    // deliveries alone can never close the books — the regression this test
    // pins is `quiesced()` waiting forever on those receivers instead of
    // counting the shortfall as undeliverable.
    let fault = FaultPlan { seed: 11, onset: 0, dead_links: 2, ..FaultPlan::NONE };
    let nets: Vec<(&str, Box<dyn NocSim>)> = vec![
        ("quarc", Box::new(QuarcNetwork::new(NocConfig::quarc(16).with_fault(fault)))),
        ("spidergon", Box::new(SpidergonNetwork::new(NocConfig::spidergon(16).with_fault(fault)))),
        ("mesh", Box::new(MeshNetwork::new(NocConfig::mesh(16).with_fault(fault)))),
        ("torus", Box::new(TorusNetwork::new(NocConfig::torus(16).with_fault(fault)))),
    ];
    for (label, mut net) in nets {
        let records = collective_records(16, 40, 0xDEAD);
        assert!(run_and_drain(net.as_mut(), records), "{label}: drain failed to terminate");
        let m = net.metrics();
        assert_eq!(m.in_flight(), 0, "{label}: in-flight after drain");
        // The fixed seed makes the traffic deterministic: with 40 collective
        // messages over 2 dead links, losses are guaranteed on every family.
        assert!(m.receivers_lost() > 0, "{label}: no packet ever crossed a dead link");
        assert!(m.undeliverable_total() > 0, "{label}: losses never retired a message");
        assert!(m.flits_dropped() > 0, "{label}");
        // Every expected receiver is accounted: delivered or written off.
        assert_eq!(
            m.receivers_delivered() + m.receivers_lost(),
            m.receivers_expected(),
            "{label}: receiver ledger must close at drain",
        );
        assert!(m.delivered_fraction() < 1.0, "{label}");
    }
}

#[test]
fn probe_ledger_closes_under_lossy_and_dead_links() {
    // Dead links *and* lossy links together, probes fully on: for every
    // message the Deliver events plus the lost-receiver counts carried on
    // Drop events must sum to the expected receiver count from its Inject.
    let fault = FaultPlan {
        seed: 5,
        onset: 0,
        dead_links: 1,
        lossy_links: 2,
        drop_per_64k: 4_000,
        ..FaultPlan::NONE
    };
    let mut net = QuarcNetwork::new(NocConfig::quarc(16).with_fault(fault));
    net.probe_mut().configure(ProbeConfig::all(1 << 17));
    let records = collective_records(16, 40, 0x10551);
    assert!(run_and_drain(&mut net, records), "drain failed to terminate");

    let probe = net.probe();
    assert_eq!(probe.events_dropped(), 0, "ring sized below the event volume");
    // message id -> (expected receivers, delivered, lost-to-faults).
    let mut ledger: HashMap<u64, (u64, u64, u64)> = HashMap::new();
    let mut drop_events = 0u64;
    for ev in probe.events() {
        match ev.kind {
            FlitEventKind::Inject => {
                ledger.entry(ev.message).or_insert((0, 0, 0)).0 = ev.arg as u64
            }
            FlitEventKind::Deliver => ledger.entry(ev.message).or_insert((0, 0, 0)).1 += 1,
            FlitEventKind::Drop => {
                drop_events += 1;
                ledger.entry(ev.message).or_insert((0, 0, 0)).2 += ev.arg as u64;
            }
            FlitEventKind::Hop
            | FlitEventKind::Clone
            | FlitEventKind::Ack
            | FlitEventKind::Retry
            | FlitEventKind::Expire => {}
        }
    }
    assert!(drop_events > 0, "the lossy plan never dropped a header");
    for (msg, (expected, delivered, lost)) in &ledger {
        assert_eq!(
            delivered + lost,
            *expected,
            "message {msg}: {delivered} delivered + {lost} lost != {expected} expected",
        );
    }
    // The probe stream and the metrics ledger agree on the totals.
    let m = net.metrics();
    let (delivered, lost): (u64, u64) =
        ledger.values().fold((0, 0), |(d, l), (_, dv, lv)| (d + dv, l + lv));
    assert_eq!(delivered, m.receivers_delivered());
    assert_eq!(lost, m.receivers_lost());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The stall watchdog, armed at its default window, never fires on a
    /// fault-free run — any topology, any seed, sub-saturation load.
    #[test]
    fn watchdog_never_fires_without_faults(seed in any::<u64>(), rate_bp in 1u32..60) {
        let run = RunSpec { warmup: 100, measure: 1_000, drain: 4_000, ..RunSpec::default() };
        prop_assert!(run.stall_window > 0, "the default must arm the watchdog");
        let rate = rate_bp as f64 / 10_000.0;
        for noc in [
            NocConfig::quarc(16),
            NocConfig::spidergon(16),
            NocConfig::mesh(16),
            NocConfig::torus(16),
            // Minimal buffering: the deepest wormhole blocking we support,
            // where a watchdog false-positive would most plausibly hide.
            NocConfig::quarc(16).with_buffer_depth(1),
            NocConfig::torus(16).with_buffer_depth(1),
        ] {
            let point = PointSpec { noc, msg_len: 4, beta: 0.05, seed, rate };
            let outcome = run_point_outcome(&point, &run).expect("valid config");
            prop_assert!(
                !outcome.is_stalled(),
                "watchdog fired on a fault-free {} run",
                noc.kind,
            );
        }
    }
}
