//! Probe-channel correctness: the flit-event stream must *conserve*.
//!
//! Every injected message produces exactly one `Inject` event carrying its
//! expected delivery count, and — once the network drains — exactly that
//! many `Deliver` events, on every topology, for every traffic class
//! (unicast, broadcast, multicast, and the Spidergon's replication chains,
//! whose continuations keep the original message id). Orphan delivers,
//! double injects, or a missing clone path would all break the ledger.
//!
//! The same runs pin the bookkeeping of the other two channels: with the
//! ring sized above the event volume nothing may be dropped, the profiler
//! must have timed every cycle, and the counter time-series must be in
//! cycle order with monotone cumulative columns.

use proptest::prelude::*;
use quarc_core::config::NocConfig;
use quarc_core::ids::NodeId;
use quarc_engine::DetRng;
use quarc_sim::driver::NocSim;
use quarc_sim::{
    FlitEventKind, MeshNetwork, ProbeConfig, QuarcNetwork, SpidergonNetwork, TorusNetwork,
};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};
use std::collections::HashMap;

/// A random mixed-class trace (same shape as the active-set lockstep runs).
fn random_records(n: usize, count: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(seed);
    let mut records = Vec::with_capacity(count);
    let mut cycle = 0u64;
    for _ in 0..count {
        cycle += rng.below(25) as u64;
        let src = NodeId::new(rng.below(n));
        let len = 2 + rng.below(8);
        let request = match rng.below(5) {
            0 => MessageRequest::broadcast(src, len),
            1 => {
                let k = 1 + rng.below(n / 2);
                let mut targets = Vec::new();
                for _ in 0..k {
                    let t = NodeId::new(rng.below_excluding(n, src.index()));
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                MessageRequest::multicast(src, targets, len)
            }
            _ => {
                MessageRequest::unicast(src, NodeId::new(rng.below_excluding(n, src.index())), len)
            }
        };
        records.push(TraceRecord { cycle, request });
    }
    records
}

/// Run `net` over the trace with every probe channel on, drain it, and audit
/// the event ledger.
fn check_conservation(net: &mut dyn NocSim, records: Vec<TraceRecord>, label: &str) {
    let n = net.num_nodes();
    net.probe_mut().configure(ProbeConfig::all(1 << 17));
    let horizon = records.last().map_or(0, |r| r.cycle) + 1;
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..horizon {
        net.step(&mut wl);
    }
    let mut silence = TraceWorkload::new(n, vec![]);
    for _ in 0..200_000u64 {
        if net.quiesced() {
            break;
        }
        net.step(&mut silence);
    }
    assert!(net.quiesced(), "{label}: failed to drain");

    let probe = net.probe();
    assert_eq!(probe.events_dropped(), 0, "{label}: ring sized below the event volume");

    // message id -> (inject count, expected delivers, observed delivers).
    let mut ledger: HashMap<u64, (u64, u64, u64)> = HashMap::new();
    for ev in probe.events() {
        match ev.kind {
            FlitEventKind::Inject => {
                let e = ledger.entry(ev.message).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 = ev.arg as u64;
            }
            FlitEventKind::Deliver => ledger.entry(ev.message).or_insert((0, 0, 0)).2 += 1,
            FlitEventKind::Hop | FlitEventKind::Clone => {
                assert!(
                    ledger.contains_key(&ev.message),
                    "{label}: {} for message {} before its inject",
                    ev.kind.name(),
                    ev.message,
                );
            }
            FlitEventKind::Drop => {
                panic!("{label}: fault drop without a fault plan (message {})", ev.message)
            }
            FlitEventKind::Ack | FlitEventKind::Retry | FlitEventKind::Expire => {
                panic!("{label}: recovery event without a recovery policy (message {})", ev.message)
            }
        }
    }
    for (msg, (injects, expected, delivered)) in &ledger {
        assert_eq!(*injects, 1, "{label}: message {msg} injected {injects} times");
        assert_eq!(
            *delivered, *expected,
            "{label}: message {msg} expected {expected} delivers, saw {delivered}",
        );
    }

    // The metrics ledger must close the same way: everything created
    // completed, nothing left in flight after drain.
    let m = net.metrics();
    assert_eq!(m.in_flight(), 0, "{label}: in-flight after drain");
    assert_eq!(
        m.completed_total(),
        ledger.len() as u64,
        "{label}: created == completed + in_flight must hold at drain",
    );

    // Profiler and counter channels kept exact books too.
    assert_eq!(probe.profiled_cycles(), net.now(), "{label}: profiler missed cycles");
    assert_eq!(probe.samples_dropped(), 0, "{label}: counter rows dropped");
    let samples = probe.samples();
    assert!(!samples.is_empty(), "{label}: no counter samples at full cadence");
    for pair in samples.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "{label}: samples out of cycle order");
        assert!(pair[0].delivered <= pair[1].delivered, "{label}: delivered ran backwards");
        assert!(pair[0].completed <= pair[1].completed, "{label}: completed ran backwards");
        assert!(
            pair[0].credit_stalls <= pair[1].credit_stalls,
            "{label}: credit stalls ran backwards",
        );
    }
    let last = samples.last().unwrap();
    assert_eq!(last.in_flight, 0, "{label}: final sample still shows in-flight packets");
    assert_eq!(last.completed, m.completed_total(), "{label}: final sample disagrees with metrics");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every topology conserves the flit-event stream over random
    /// mixed-class traces, through drain.
    #[test]
    fn flit_event_stream_conserves_on_every_topology(seed in any::<u64>()) {
        let records = random_records(16, 25, seed);
        let mut quarc = QuarcNetwork::new(NocConfig::quarc(16));
        check_conservation(&mut quarc, records.clone(), "quarc");
        let mut spider = SpidergonNetwork::new(NocConfig::spidergon(16));
        check_conservation(&mut spider, records.clone(), "spidergon");
        let mut mesh = MeshNetwork::new(NocConfig::mesh(16));
        check_conservation(&mut mesh, records.clone(), "mesh");
        let mut torus = TorusNetwork::new(NocConfig::torus(16));
        check_conservation(&mut torus, records, "torus");
    }

    /// Conservation survives minimal buffering (deep wormhole blocking means
    /// long-lived packets and many more hop/stall events per message).
    #[test]
    fn flit_event_stream_conserves_at_depth_one(seed in any::<u64>()) {
        let records = random_records(16, 20, seed);
        let mut quarc = QuarcNetwork::new(NocConfig::quarc(16).with_buffer_depth(1));
        check_conservation(&mut quarc, records.clone(), "quarc/depth1");
        let mut torus = TorusNetwork::new(NocConfig::torus(16).with_buffer_depth(1));
        check_conservation(&mut torus, records, "torus/depth1");
    }
}

/// A bounded ring on a saturated run drops the *oldest* events and says so:
/// the count is exact and what remains is still in cycle order.
#[test]
fn bounded_ring_drops_oldest_and_counts() {
    let mut net = QuarcNetwork::new(NocConfig::quarc(16));
    net.probe_mut().configure(ProbeConfig { trace_capacity: 256, ..ProbeConfig::off() });
    let records = random_records(16, 40, 0x51AB);
    let horizon = records.last().map_or(0, |r| r.cycle) + 1;
    let mut wl = TraceWorkload::new(16, records);
    for _ in 0..horizon + 2_000 {
        net.step(&mut wl);
    }
    let probe = net.probe();
    assert!(probe.events_dropped() > 0, "40 mixed messages must overflow a 256-slot ring");
    let cycles: Vec<u64> = probe.events().map(|e| e.cycle).collect();
    assert_eq!(cycles.len(), 256);
    assert!(cycles.windows(2).all(|p| p[0] <= p[1]), "ring replay must stay in cycle order");
}
