//! End-to-end recovery layer: ack/timeout/retransmit over faulty fabrics.
//!
//! The properties pinned here:
//!
//! 1. **Lossy fabrics become reliable.** Under a drop-inducing fault plan
//!    with recovery enabled, every expected receiver is eventually served:
//!    `delivered_fraction == 1.0` with `retransmissions > 0` doing the work.
//! 2. **The probe ledger closes under recovery.** Per message:
//!    `delivers + sum(Expire.arg) == expected receivers` — fault drops no
//!    longer write receivers off (their `Drop.arg` is 0); the exhaust pump
//!    is the sole write-off site.
//! 3. **Transient-only schedules always recover** (proptest, satellite 3):
//!    transient faults block without dropping, so any such plan reaches
//!    full delivery with zero undeliverable messages, watchdog armed.
//! 4. **`RecoveryPolicy::NONE` changes nothing** — held separately by
//!    `tests/equivalence.rs` goldens.

use proptest::prelude::*;
use quarc_core::config::{FaultPlan, NocConfig, RecoveryPolicy};
use quarc_core::ids::NodeId;
use quarc_engine::DetRng;
use quarc_sim::driver::NocSim;
use quarc_sim::{build_any, run_mono_outcome, FlitEventKind, ProbeConfig, RunOutcome, RunSpec};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};
use std::collections::HashMap;

/// A collective-heavy trace (broadcasts, multicasts, unicasts), the traffic
/// most exposed to drops: many receivers per message.
fn collective_records(n: usize, count: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(seed);
    let mut records = Vec::with_capacity(count);
    let mut cycle = 0u64;
    for _ in 0..count {
        cycle += rng.below(20) as u64;
        let src = NodeId::new(rng.below(n));
        let len = 2 + rng.below(6);
        let request = match rng.below(3) {
            0 => MessageRequest::broadcast(src, len),
            1 => {
                let k = 1 + rng.below(n / 2);
                let mut targets = Vec::new();
                for _ in 0..k {
                    let t = NodeId::new(rng.below_excluding(n, src.index()));
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                MessageRequest::multicast(src, targets, len)
            }
            _ => {
                MessageRequest::unicast(src, NodeId::new(rng.below_excluding(n, src.index())), len)
            }
        };
        records.push(TraceRecord { cycle, request });
    }
    records
}

/// Drive the trace, then drain under a hard cycle bound (generous enough
/// for several exponential-backoff retry rounds). Returns whether the drain
/// terminated — with recovery every window must close (served or exhausted).
fn run_and_drain(net: &mut dyn NocSim, records: Vec<TraceRecord>) -> bool {
    let n = net.num_nodes();
    let horizon = records.last().map_or(0, |r| r.cycle) + 1;
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..horizon {
        net.step(&mut wl);
    }
    let mut silence = TraceWorkload::new(n, vec![]);
    for _ in 0..400_000u64 {
        if net.quiesced() {
            return true;
        }
        net.step(&mut silence);
    }
    net.quiesced()
}

/// A drop-heavy but recoverable plan: lossy links lose packets outright,
/// so only retransmission can reach 1.0.
fn lossy_plan() -> FaultPlan {
    FaultPlan { seed: 5, onset: 0, lossy_links: 6, drop_per_64k: 4_000, ..FaultPlan::NONE }
}

/// A short-timeout recovery policy sized for 16-node tests.
fn policy() -> RecoveryPolicy {
    RecoveryPolicy { seed: 9, ack_timeout: 400, max_retries: 10, jitter: 32 }
}

fn recovery_configs() -> Vec<NocConfig> {
    vec![
        NocConfig::quarc(16).with_fault(lossy_plan()).with_recovery(policy()),
        NocConfig::spidergon(16).with_fault(lossy_plan()).with_recovery(policy()),
        NocConfig::mesh(16).with_fault(lossy_plan()).with_recovery(policy()),
        NocConfig::torus(16).with_fault(lossy_plan()).with_recovery(policy()),
    ]
}

#[test]
fn lossy_fabric_reaches_full_delivery_with_recovery() {
    for cfg in recovery_configs() {
        let label = cfg.kind;
        let mut net = build_any(cfg);
        let n = net.num_nodes();
        let records = collective_records(n, 40, 0x10551);
        assert!(run_and_drain(&mut net, records), "{label}: drain failed to terminate");
        let m = net.metrics();
        assert_eq!(m.in_flight(), 0, "{label}: in-flight after drain");
        assert!(m.flits_dropped() > 0, "{label}: the lossy plan never dropped anything");
        assert!(m.retransmissions() > 0, "{label}: recovery never retransmitted");
        assert!(m.recovered_receivers() > 0, "{label}: no receiver was served by a retry");
        assert!(m.acks_delivered() > 0, "{label}: no ACK ever came home");
        assert_eq!(m.receivers_lost(), 0, "{label}: a recoverable loss was written off");
        assert_eq!(m.undeliverable_total(), 0, "{label}");
        assert_eq!(
            m.delivered_fraction(),
            1.0,
            "{label}: recovery must reach every receiver on a lossy (not dead) fabric",
        );
    }
}

#[test]
fn probe_ledger_closes_under_recovery() {
    // Probes fully on: for every message the Deliver events plus the
    // written-off receivers carried on Expire events must sum to the
    // expected receiver count from its Inject. Fault drops carry arg 0
    // under recovery (the retransmit path owns the accounting).
    for cfg in recovery_configs() {
        let label = cfg.kind;
        let mut net = build_any(cfg);
        let n = net.num_nodes();
        net.probe_mut().configure(ProbeConfig::all(1 << 18));
        let records = collective_records(n, 40, 0x10551);
        assert!(run_and_drain(&mut net, records), "{label}: drain failed to terminate");

        let probe = net.probe();
        assert_eq!(probe.events_dropped(), 0, "{label}: ring sized below the event volume");
        // message id -> (expected, delivered, written-off, drop-arg sum).
        let mut ledger: HashMap<u64, (u64, u64, u64, u64)> = HashMap::new();
        let mut retries = 0u64;
        let mut acks = 0u64;
        for ev in probe.events() {
            let e = ledger.entry(ev.message).or_insert((0, 0, 0, 0));
            match ev.kind {
                FlitEventKind::Inject => e.0 = ev.arg as u64,
                FlitEventKind::Deliver => e.1 += 1,
                FlitEventKind::Expire => e.2 += ev.arg as u64,
                FlitEventKind::Drop => e.3 += ev.arg as u64,
                FlitEventKind::Retry => retries += 1,
                FlitEventKind::Ack => acks += 1,
                FlitEventKind::Hop | FlitEventKind::Clone => {}
            }
        }
        assert!(retries > 0, "{label}: no Retry event under a lossy plan");
        assert!(acks > 0, "{label}: no Ack event under recovery");
        for (msg, (expected, delivered, expired, drop_args)) in &ledger {
            assert_eq!(
                *drop_args, 0,
                "{label}: message {msg}: Drop events must not write receivers off under recovery",
            );
            assert_eq!(
                delivered + expired,
                *expected,
                "{label}: message {msg}: {delivered} delivered + {expired} expired \
                 != {expected} expected",
            );
        }
        let m = net.metrics();
        let delivered: u64 = ledger.values().map(|(_, d, _, _)| d).sum();
        assert_eq!(delivered, m.receivers_delivered(), "{label}");
    }
}

#[test]
fn recovery_off_lossy_run_still_loses_receivers() {
    // The contrast case: same plan, recovery disabled — the fabric stays
    // lossy and the old write-off accounting applies. Guards against the
    // recovery hooks accidentally engaging under `RecoveryPolicy::NONE`.
    let mut net = build_any(NocConfig::quarc(16).with_fault(lossy_plan()));
    let records = collective_records(16, 40, 0x10551);
    assert!(run_and_drain(&mut net, records), "drain failed to terminate");
    let m = net.metrics();
    assert!(m.receivers_lost() > 0);
    assert!(m.delivered_fraction() < 1.0);
    assert_eq!(m.retransmissions(), 0);
    assert_eq!(m.acks_delivered(), 0);
}

#[test]
fn unreachable_receivers_exhaust_retries_and_terminate() {
    // Dead links are permanent: retransmission cannot reach receivers with
    // no surviving route. The retry budget must exhaust, the remainder
    // retire as undeliverable, and the drain still terminate.
    let fault = FaultPlan { seed: 11, onset: 0, dead_links: 2, ..FaultPlan::NONE };
    // Tight budget so exhaustion happens well inside the drain bound.
    let rec = RecoveryPolicy { seed: 9, ack_timeout: 300, max_retries: 3, jitter: 16 };
    let mut net = build_any(NocConfig::quarc(16).with_fault(fault).with_recovery(rec));
    let records = collective_records(16, 40, 0xDEAD);
    assert!(run_and_drain(&mut net, records), "drain failed to terminate");
    let m = net.metrics();
    assert_eq!(m.in_flight(), 0);
    assert!(m.retransmissions() > 0, "dead-link losses must trigger retries first");
    assert!(m.receivers_lost() > 0, "unreachable receivers must eventually be written off");
    assert!(m.undeliverable_total() > 0);
    assert_eq!(m.receivers_delivered() + m.receivers_lost(), m.receivers_expected());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite 3: transient faults block but never drop, so *any*
    /// transient-only schedule is fully recoverable on every topology —
    /// delivery reaches 1.0, nothing is undeliverable, and the armed
    /// watchdog never fires (backoff waits are progress, not stalls).
    #[test]
    fn transient_only_schedules_always_recover(
        seed in any::<u64>(),
        links in 1u16..4,
        cycles in 200u32..2_000,
    ) {
        let run = RunSpec { warmup: 100, measure: 1_000, drain: 30_000, ..RunSpec::default() };
        prop_assert!(run.stall_window > 0, "the default must arm the watchdog");
        let fault = FaultPlan {
            seed,
            onset: 50,
            transient_links: links,
            transient_cycles: cycles,
            ..FaultPlan::NONE
        };
        for noc in [
            NocConfig::quarc(16),
            NocConfig::spidergon(16),
            NocConfig::mesh(16),
            NocConfig::torus(16),
        ] {
            let cfg = noc.with_fault(fault).with_recovery(policy());
            let mut net = build_any(cfg);
            let n = net.num_nodes();
            let mut wl = quarc_workloads::Synthetic::new(
                n,
                quarc_workloads::SyntheticConfig::paper(0.004, 4, 0.05, seed),
            );
            let outcome = run_mono_outcome(&mut net, &mut wl, &run);
            prop_assert!(
                !matches!(outcome, RunOutcome::Stalled { .. }),
                "watchdog fired on a transient-only {} run", cfg.kind,
            );
            let result = outcome.into_result();
            prop_assert_eq!(
                result.delivered_fraction, 1.0,
                "transient-only {} run failed to recover", cfg.kind,
            );
            prop_assert_eq!(result.undeliverable, 0, "{}", cfg.kind);
        }
    }
}
