//! Behavioural equivalence goldens for the simulation hot path.
//!
//! The zero-allocation refactor (packet-meta interning, scratch-buffer
//! workload polling, O(1) credits/quiescence) must be **bit-identical** to
//! the original per-flit-clone implementation. These tests pin that down:
//! fixed-seed Synthetic, Bursty and Trace workloads run on all four network
//! models, and the resulting metric tuples — flit counts, per-class
//! created/completed counts, and latency means rendered as exact `f64` bit
//! patterns — are compared byte-for-byte against goldens generated *before*
//! the refactor.
//!
//! Since the torus/mesh multicast tree landed, the mesh and torus scenarios
//! run with β > 0 and collective traces (goldens regenerated at that change,
//! with the quarc/spidergon lines verified byte-identical across it); the
//! torus additionally pins the `TopologyKind::Torus` config path.
//!
//! Every scenario runs with the full [`SimProbe`] instrumentation — phase
//! profiler, counter sampling and flit tracing — at full cadence. The
//! goldens were generated with probes *off*, so byte-identical output here
//! is the observe-never-mutate invariant: turning every probe on must not
//! change a single simulated bit.
//!
//! Regenerate (only when an intentional behaviour change is made) with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p quarc-sim --test equivalence
//! ```

use quarc_core::config::NocConfig;
use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_sim::mesh_net::MeshNetwork;
use quarc_sim::torus_net::TorusNetwork;
use quarc_sim::{NocSim, ProbeConfig, QuarcNetwork, SpidergonNetwork};
use quarc_workloads::{
    Bursty, BurstyConfig, MessageRequest, Synthetic, SyntheticConfig, TraceRecord, TraceWorkload,
    Workload,
};

const GOLDEN: &str = include_str!("goldens/metrics_equivalence.txt");
const GOLDEN_LARGE: &str = include_str!("goldens/metrics_equivalence_large.txt");

/// One scenario line: run `cycles` of injection, then drain up to `drain`
/// cycles, and render every metric the figures consume.
fn run_scenario(name: &str, net: &mut dyn NocSim, wl: &mut dyn Workload, cycles: u64) -> String {
    // Observe, never mutate: all three probe channels on, goldens unchanged.
    net.probe_mut().configure(ProbeConfig::all(1 << 12));
    for _ in 0..cycles {
        net.step(wl);
    }
    let mut silence = TraceWorkload::new(net.num_nodes(), vec![]);
    for _ in 0..40_000u64 {
        if net.quiesced() {
            break;
        }
        net.step(&mut silence);
    }
    let m = net.metrics();
    let classes = [
        ("u", TrafficClass::Unicast),
        ("b", TrafficClass::Broadcast),
        ("m", TrafficClass::Multicast),
    ];
    let mut line = format!(
        "{name} quiesced={} now={} flits={} total_done={}",
        net.quiesced(),
        net.now(),
        m.flits_delivered(),
        m.completed_total()
    );
    for (tag, c) in classes {
        line.push_str(&format!(" {tag}={}:{}", m.created(c), m.completed(c)));
    }
    // Exact f64 bit patterns: any arithmetic drift, sample reordering or
    // missing sample changes these.
    line.push_str(&format!(
        " uc_mean={:016x} uc_n={} br_mean={:016x} bc_mean={:016x} bc_n={} mc_mean={:016x}",
        m.unicast_latency().mean().to_bits(),
        m.unicast_latency().count(),
        m.broadcast_reception_latency().mean().to_bits(),
        m.broadcast_completion_latency().mean().to_bits(),
        m.broadcast_completion_latency().count(),
        m.multicast_completion_latency().mean().to_bits(),
    ));
    line.push_str(&format!(
        " uc_p95={:?} uc_min={:?} uc_max={:?}",
        m.unicast_histogram().percentile(95.0),
        m.unicast_latency().min().map(f64::to_bits),
        m.unicast_latency().max().map(f64::to_bits),
    ));
    line.push('\n');
    line
}

/// A deterministic mixed-class trace exercising unicast, broadcast and (on
/// the ring topologies) multicast paths, with deliberate same-cycle bursts.
fn mixed_trace(n: usize, collectives: bool) -> Vec<TraceRecord> {
    let mut records = Vec::new();
    for i in 0..n {
        let src = NodeId::new(i);
        let dst = NodeId::new((i + n / 2 + 1) % n);
        records.push(TraceRecord {
            cycle: (i as u64 / 4) * 3,
            request: MessageRequest::unicast(src, dst, 2 + (i % 7)),
        });
    }
    if collectives {
        for i in 0..n / 4 {
            let src = NodeId::new((5 * i + 2) % n);
            records.push(TraceRecord {
                cycle: 10 + i as u64,
                request: MessageRequest::broadcast(src, 4),
            });
            let targets = vec![
                NodeId::new((i + 1) % n),
                NodeId::new((i + 3) % n),
                NodeId::new((i + n - 2) % n),
            ];
            let msrc = NodeId::new(i);
            let targets: Vec<NodeId> = targets.into_iter().filter(|t| *t != msrc).collect();
            records.push(TraceRecord {
                cycle: 20 + 2 * i as u64,
                request: MessageRequest::multicast(msrc, targets, 5),
            });
        }
    }
    let mut per_node: Vec<Vec<TraceRecord>> = (0..n).map(|_| Vec::new()).collect();
    for r in records {
        per_node[r.request.src.index()].push(r);
    }
    let mut sorted = Vec::new();
    for mut q in per_node {
        q.sort_by_key(|r| r.cycle);
        sorted.extend(q);
    }
    sorted
}

fn scenarios() -> String {
    let mut out = String::new();

    // Synthetic (the paper's Bernoulli workload) on every topology — β > 0
    // everywhere now that mesh/torus carry collectives.
    for (name, mk, beta) in [
        ("quarc/synthetic", 0u8, 0.1),
        ("spidergon/synthetic", 1, 0.1),
        ("mesh/synthetic", 2, 0.1),
        ("torus/synthetic", 3, 0.1),
    ] {
        let mut net: Box<dyn NocSim> = match mk {
            0 => Box::new(QuarcNetwork::new(NocConfig::quarc(16))),
            1 => Box::new(SpidergonNetwork::new(NocConfig::spidergon(16))),
            2 => Box::new(MeshNetwork::new(NocConfig::mesh(16))),
            _ => Box::new(TorusNetwork::new(NocConfig::torus(16))),
        };
        let n = net.num_nodes();
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(0.03, 8, beta, 0xA5A5));
        out.push_str(&run_scenario(name, net.as_mut(), &mut wl, 3_000));
    }

    // Bursty on/off traffic (stresses same-cycle multi-message polling).
    for (name, mk, bfrac) in [
        ("quarc/bursty", 0u8, 0.08),
        ("spidergon/bursty", 1, 0.08),
        ("mesh/bursty", 2, 0.08),
        ("torus/bursty", 3, 0.08),
    ] {
        let mut net: Box<dyn NocSim> = match mk {
            0 => Box::new(QuarcNetwork::new(NocConfig::quarc(16))),
            1 => Box::new(SpidergonNetwork::new(NocConfig::spidergon(16))),
            2 => Box::new(MeshNetwork::new(NocConfig::mesh(16))),
            _ => Box::new(TorusNetwork::new(NocConfig::torus(16))),
        };
        let n = net.num_nodes();
        let cfg = BurstyConfig {
            peak_rate: 0.25,
            mean_on: 30.0,
            mean_off: 90.0,
            broadcast_frac: bfrac,
            short_len: 2,
            long_len: 12,
            long_frac: 0.4,
            seed: 0xBEEF,
            ..Default::default()
        };
        let mut wl = Bursty::new(n, cfg);
        out.push_str(&run_scenario(name, net.as_mut(), &mut wl, 3_000));
    }

    // Fixed traces (exact replay; multicast and broadcast on every model).
    for (name, mk) in
        [("quarc/trace", 0u8), ("spidergon/trace", 1), ("mesh/trace", 2), ("torus/trace", 3)]
    {
        let mut net: Box<dyn NocSim> = match mk {
            0 => Box::new(QuarcNetwork::new(NocConfig::quarc(16))),
            1 => Box::new(SpidergonNetwork::new(NocConfig::spidergon(16))),
            2 => Box::new(MeshNetwork::new(NocConfig::mesh(16))),
            _ => Box::new(TorusNetwork::new(NocConfig::torus(16))),
        };
        let n = net.num_nodes();
        let mut wl = TraceWorkload::new(n, mixed_trace(n, true));
        out.push_str(&run_scenario(name, net.as_mut(), &mut wl, 400));
    }

    // Larger Quarc near saturation: deep wormhole contention, VC arbitration
    // and credit stalls all active.
    {
        let mut net = QuarcNetwork::new(NocConfig::quarc(32).with_buffer_depth(2));
        let mut wl = Synthetic::new(32, SyntheticConfig::paper(0.09, 8, 0.05, 0x5EED));
        out.push_str(&run_scenario("quarc/near-sat", &mut net, &mut wl, 4_000));
    }

    out
}

/// Large-n scenarios (the active-set scaling axis), pinned in a *separate*
/// golden file so growing the covered size range never rewrites a byte of
/// the original scenarios — CI regenerates both files and asserts the
/// working tree is clean.
fn large_scenarios() -> String {
    let mut out = String::new();
    for (name, mk, n, rate, cycles) in [
        ("quarc/n256-trickle", 0u8, 256usize, 0.002, 2_500u64),
        ("spidergon/n256-trickle", 1, 256, 0.002, 2_000),
        ("mesh/n256-trickle", 2, 256, 0.002, 2_000),
        ("torus/n256-trickle", 3, 256, 0.002, 2_000),
        ("quarc/n1024-trickle", 0, 1024, 0.002, 1_200),
    ] {
        let mut net: Box<dyn NocSim> = match mk {
            0 => Box::new(QuarcNetwork::new(NocConfig::quarc(n))),
            1 => Box::new(SpidergonNetwork::new(NocConfig::spidergon(n))),
            2 => Box::new(MeshNetwork::new(NocConfig::mesh(n))),
            _ => Box::new(TorusNetwork::new(NocConfig::torus(n))),
        };
        let nodes = net.num_nodes();
        let beta = if mk == 1 { 0.02 } else { 0.05 };
        let mut wl = Synthetic::new(nodes, SyntheticConfig::paper(rate, 8, beta, 0xA5A5));
        out.push_str(&run_scenario(name, net.as_mut(), &mut wl, cycles));
    }
    out
}

#[test]
fn metrics_are_bit_identical_to_goldens() {
    let got = scenarios();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/metrics_equivalence.txt");
        std::fs::write(path, &got).expect("write goldens");
        eprintln!("goldens updated at {path}");
        return;
    }
    assert_eq!(
        got, GOLDEN,
        "simulation output diverged from the pre-refactor goldens; \
         if the change is intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

#[test]
fn large_n_metrics_are_bit_identical_to_goldens() {
    let got = large_scenarios();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let path =
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/metrics_equivalence_large.txt");
        std::fs::write(path, &got).expect("write goldens");
        eprintln!("large-n goldens updated at {path}");
        return;
    }
    assert_eq!(
        got, GOLDEN_LARGE,
        "large-n simulation output diverged from its goldens; \
         if the change is intentional, regenerate with UPDATE_GOLDENS=1"
    );
}
