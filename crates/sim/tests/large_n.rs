//! Full-range multicast conservation at sizes far beyond the old `u128`
//! bitstring ceiling.
//!
//! The bitstring slab lifts explicit-target multicast from n ≤ 512 (Quarc)
//! and n ≤ 4096 (grids) to [`MAX_SIM_NODES`]. These tests pin the ledger at
//! n = 8192: one injected multicast whose branch spans force slab-backed
//! bitstrings (Quarc quarter-depth 2048; torus column walks ~90 hops), run
//! to quiescence, and every planned receiver — and nobody else — gets a
//! copy.
//!
//! [`MAX_SIM_NODES`]: quarc_core::config::MAX_SIM_NODES

use quarc_core::bits::BitSlab;
use quarc_core::config::NocConfig;
use quarc_core::ids::NodeId;
use quarc_core::ring::Ring;
use quarc_core::torus::TorusTopology;
use quarc_sim::torus_net::TorusNetwork;
use quarc_sim::{NocSim, QuarcNetwork};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

const N: usize = 8192;
const LEN: usize = 4;

/// A target set that spans the whole address range (both slab words and
/// every quadrant), prime-strided so it does not align with any quadrant
/// boundary.
fn full_range_targets(n: usize) -> Vec<NodeId> {
    (0..n).step_by(61).map(NodeId::new).collect()
}

fn run_one(net: &mut dyn NocSim, record: TraceRecord) -> (u64, u64) {
    let n = net.num_nodes();
    let mut wl = TraceWorkload::new(n, vec![record]);
    for _ in 0..1_000_000 {
        net.step(&mut wl);
        if net.quiesced() && wl.remaining() == 0 {
            break;
        }
    }
    assert!(net.quiesced(), "network failed to drain");
    (net.metrics().flits_delivered(), net.metrics().completed_total())
}

#[test]
fn quarc_full_range_multicast_conserves_at_n8192() {
    let ring = Ring::new(N);
    let src = NodeId::new(7);
    let targets = full_range_targets(N);
    assert!(targets.len() > 64, "target set must exceed the inline width");

    let mut slab = BitSlab::new(ring.quarter() + 1);
    let branches = quarc_core::quadrant::multicast_branches(&ring, src, &targets, &mut slab);
    let receivers: usize = branches.iter().map(|b| b.deliveries.len()).sum();
    assert!(
        branches.iter().any(|b| !b.bitstring.is_inline()),
        "an 8192-node span must need a slab row"
    );

    let mut net = QuarcNetwork::new(NocConfig::quarc(N));
    let record = TraceRecord { cycle: 0, request: MessageRequest::multicast(src, targets, LEN) };
    let (flits, msgs) = run_one(&mut net, record);
    assert_eq!(flits, (receivers * LEN) as u64);
    assert_eq!(msgs, 1);
}

#[test]
fn torus_full_range_multicast_conserves_beyond_u128() {
    let topo = TorusTopology::square(N);
    let n = topo.num_nodes();
    let src = NodeId::new(7);
    let targets = full_range_targets(n);

    let mut slab = BitSlab::new(topo.diameter() + 1);
    let mut branches = Vec::new();
    topo.multicast_branches_into(src, targets.iter().copied(), &mut slab, &mut branches);
    let receivers: usize = branches.iter().map(|b| b.receivers(&slab)).sum();

    let mut net = TorusNetwork::new(NocConfig::torus(N));
    assert_eq!(net.num_nodes(), n);
    let record = TraceRecord { cycle: 0, request: MessageRequest::multicast(src, targets, LEN) };
    let (flits, msgs) = run_one(&mut net, record);
    assert_eq!(flits, (receivers * LEN) as u64);
    assert_eq!(msgs, 1);
}
