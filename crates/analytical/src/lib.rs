//! # quarc-analytical
//!
//! M/G/1-based analytical latency models for the Quarc, Spidergon and mesh
//! networks, mirroring the role of the paper's ref. [8]: an independent
//! check that the flit-level simulator behaves like wormhole queueing theory
//! says it must (paper §3.2). The models also expose the structural facts the
//! paper argues from — per-link load balance ([`linkload`]) and the
//! saturation-rate gap between the two architectures ([`latency`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod beta;
pub mod latency;
pub mod linkload;
pub mod mg1;

pub use beta::{
    quarc_effective_port_rate, quarc_port_saturation_with_beta, spidergon_effective_port_rate,
    spidergon_saturation_with_beta,
};
pub use latency::{
    mesh_unicast_latency, quarc_broadcast_zero_load, quarc_saturation_rate, quarc_unicast_latency,
    spidergon_broadcast_zero_load, spidergon_saturation_rate, spidergon_unicast_latency,
};
pub use linkload::{mesh_loads, quarc_loads, spidergon_loads, LinkLoads};
pub use mg1::mg1_wait;
