//! Broadcast-rate (β) aware load amplification — the analytical skeleton of
//! the paper's Fig. 11.
//!
//! A fraction β of messages are broadcasts. The two architectures pay for
//! them completely differently:
//!
//! * **Quarc**: the source injects 4 branch packets through 4 *separate*
//!   quadrant ports, and every rim link carries the stream exactly once —
//!   per-rim-link flit load grows like `β·M` per message regardless of
//!   destination distribution, and injection-port load is unchanged (each
//!   port still sees ~λ/4 packet arrivals).
//! * **Spidergon**: the replication chain turns one broadcast into `N−1`
//!   *full packet injections* distributed over all nodes' single ports:
//!   system-wide the injection load per port becomes
//!   `λ(1−β) + λβ(N−1)·(1/N)·N = λ(1−β) + λβ(N−1)` — every port must
//!   re-inject (on average) β·(N−1) extra packets per generated message,
//!   because each node is an intermediate hop of everyone else's chains.
//!
//! Setting the Spidergon port utilisation `ρ = M·λ_eff = 1` yields the
//! β-dependent saturation estimate that reproduces the Fig. 11 collapse.

/// Effective packet-injection rate through one Spidergon local port at
/// offered message rate `lambda` with broadcast fraction `beta` on `n`
/// nodes: locally generated packets plus the node's share of every chain
/// re-injection in the system.
pub fn spidergon_effective_port_rate(n: usize, lambda: f64, beta: f64) -> f64 {
    // A broadcast seeds 3 packets at the source and re-injects once per
    // remaining covered node: n−1 total injections system-wide. Uniformly
    // spread, each node's port absorbs (n−1)/n ≈ 1 extra injection per
    // system broadcast; system broadcast rate is n·λ·β, so per port:
    // λβ(n−1). Unicasts cost exactly one injection.
    lambda * (1.0 - beta) + lambda * beta * (n as f64 - 1.0)
}

/// Effective packet rate through the *worst* Quarc quadrant port under the
/// same workload: broadcasts put exactly one branch packet in each port, so
/// each port sees `λβ` broadcast branches plus its quadrant share of
/// unicasts (≤ `λ(1−β)·(n/4)/(n−1)`).
pub fn quarc_effective_port_rate(n: usize, lambda: f64, beta: f64) -> f64 {
    let quadrant_share = (n as f64 / 4.0) / (n as f64 - 1.0);
    lambda * (1.0 - beta) * quadrant_share + lambda * beta
}

/// β-aware Spidergon saturation estimate: the offered message rate at which
/// the single injection port hits utilisation 1 (`M` flits per packet).
/// This port bound collapses with β far before the link bound does.
pub fn spidergon_saturation_with_beta(n: usize, m: usize, beta: f64) -> f64 {
    let amplification = (1.0 - beta) + beta * (n as f64 - 1.0);
    1.0 / (m as f64 * amplification)
}

/// β-aware Quarc port-saturation estimate (the per-port bound; rim-link
/// capacity, which also carries the cloned streams, is handled by the
/// simulator — this is the *injection* bound that stays nearly flat in β).
pub fn quarc_port_saturation_with_beta(n: usize, m: usize, beta: f64) -> f64 {
    let quadrant_share = (n as f64 / 4.0) / (n as f64 - 1.0);
    1.0 / (m as f64 * ((1.0 - beta) * quadrant_share + beta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_reduces_to_plain_rates() {
        let lam = 0.01;
        assert!((spidergon_effective_port_rate(16, lam, 0.0) - lam).abs() < 1e-12);
        let q = quarc_effective_port_rate(16, lam, 0.0);
        assert!((q - lam * (4.0 / 15.0)).abs() < 1e-12);
    }

    #[test]
    fn spidergon_amplification_is_n_minus_one() {
        // Pure broadcast: each message costs n−1 injections per port.
        let lam = 0.001;
        let eff = spidergon_effective_port_rate(64, lam, 1.0);
        assert!((eff - lam * 63.0).abs() < 1e-12);
    }

    #[test]
    fn quarc_ports_barely_feel_beta() {
        // Fig. 11's flat Quarc curves: going 0 → 10% broadcast raises the
        // worst Quarc port rate by < 10%, while the Spidergon port rate
        // more than doubles.
        let (n, lam) = (64, 0.002);
        let q0 = quarc_effective_port_rate(n, lam, 0.0);
        let q10 = quarc_effective_port_rate(n, lam, 0.10);
        assert!(q10 / q0 < 1.35, "quarc growth {}", q10 / q0);
        let s0 = spidergon_effective_port_rate(n, lam, 0.0);
        let s10 = spidergon_effective_port_rate(n, lam, 0.10);
        assert!(s10 / s0 > 2.0, "spidergon growth {}", s10 / s0);
    }

    #[test]
    fn saturation_collapse_matches_fig11_ordering() {
        // n=64, M=16: β 0 → 10% must cut the Spidergon port bound by ~7x
        // while the Quarc bound moves by < 25%.
        let s0 = spidergon_saturation_with_beta(64, 16, 0.0);
        let s10 = spidergon_saturation_with_beta(64, 16, 0.10);
        assert!(s0 / s10 > 5.0, "collapse ratio {}", s0 / s10);
        let q0 = quarc_port_saturation_with_beta(64, 16, 0.0);
        let q10 = quarc_port_saturation_with_beta(64, 16, 0.10);
        assert!(q0 / q10 < 1.4, "quarc ratio {}", q0 / q10);
    }

    #[test]
    fn measured_knees_bracketed_by_port_bound() {
        // The simulator's measured Spidergon knee at n=64, M=16, β=10%
        // (EXPERIMENTS.md: ~0.0022) must be below this port bound but within
        // an order of magnitude of it.
        let bound = spidergon_saturation_with_beta(64, 16, 0.10);
        assert!(bound > 0.0022 && bound < 0.022, "bound {bound}");
    }

    #[test]
    fn saturation_decreases_monotonically_in_beta() {
        let mut prev = f64::INFINITY;
        for b in [0.0, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let s = spidergon_saturation_with_beta(32, 8, b);
            assert!(s < prev);
            prev = s;
        }
    }
}
