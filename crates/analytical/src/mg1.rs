//! M/G/1 queueing primitives.
//!
//! The analytical latency models of Moadeli et al. (ICPP 2007, the paper's
//! ref. [8]) treat every network channel and every injection port as an
//! M/G/1 queue: Poisson message arrivals, general service time. We use the
//! Pollaczek–Khinchine mean waiting time with a configurable service-time
//! coefficient of variation (0 = deterministic service, 1 = exponential).

/// Mean waiting time of an M/G/1 queue.
///
/// `rho` is the utilisation (arrival rate × mean service), `service` the mean
/// service time, `cv2` the squared coefficient of variation of service.
/// Returns `None` when the queue is unstable (`rho ≥ 1`).
pub fn mg1_wait(rho: f64, service: f64, cv2: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&rho) {
        return None;
    }
    if rho == 0.0 {
        return Some(0.0);
    }
    Some(rho * service * (1.0 + cv2) / (2.0 * (1.0 - rho)))
}

/// Squared coefficient of variation used for wormhole channel service: the
/// service time of a message on a channel is dominated by its deterministic
/// M-flit serialisation, so we default to deterministic service.
pub const DEFAULT_CV2: f64 = 0.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_waits_nothing() {
        assert_eq!(mg1_wait(0.0, 10.0, 0.0), Some(0.0));
    }

    #[test]
    fn wait_grows_with_utilisation() {
        let w1 = mg1_wait(0.2, 8.0, 0.0).unwrap();
        let w2 = mg1_wait(0.5, 8.0, 0.0).unwrap();
        let w3 = mg1_wait(0.9, 8.0, 0.0).unwrap();
        assert!(w1 < w2 && w2 < w3);
    }

    #[test]
    fn unstable_queue_is_none() {
        assert_eq!(mg1_wait(1.0, 8.0, 0.0), None);
        assert_eq!(mg1_wait(1.5, 8.0, 0.0), None);
        assert_eq!(mg1_wait(-0.1, 8.0, 0.0), None);
    }

    #[test]
    fn md1_half_of_mm1() {
        // For the same rho and mean service, deterministic service waits half
        // as long as exponential (cv2 = 1).
        let det = mg1_wait(0.5, 8.0, 0.0).unwrap();
        let exp = mg1_wait(0.5, 8.0, 1.0).unwrap();
        assert!((exp - 2.0 * det).abs() < 1e-12);
    }

    #[test]
    fn pk_formula_spot_check() {
        // rho = 0.5, S = 10, cv2 = 0 → W = 0.5·10/(2·0.5) = 5.
        assert!((mg1_wait(0.5, 10.0, 0.0).unwrap() - 5.0).abs() < 1e-12);
    }
}
