//! Per-link route counting under uniform traffic.
//!
//! For a vertex-symmetric topology with deterministic routing, the number of
//! source/destination pairs whose route traverses each physical channel fully
//! determines channel utilisations — and the *imbalance* of these counts is
//! the paper's §2.1 critique of the Spidergon ("the edge-asymmetric property
//! of the Spidergon causes the number of messages that cross each physical
//! link to vary severely").

use quarc_core::ids::NodeId;
use quarc_core::ring::Ring;
use quarc_core::topology::MeshTopology;
use quarc_core::vc::{quarc_route_channels, spidergon_route_channels};
use std::collections::HashMap;

/// Route counts per directed physical link (both VCs merged: they share the
/// wire).
#[derive(Debug, Clone)]
pub struct LinkLoads {
    /// `link id → number of (src, dst) pairs routed through it`.
    counts: HashMap<u64, usize>,
    /// Number of ordered pairs considered (`n(n−1)`).
    pairs: usize,
}

impl LinkLoads {
    /// Pairs crossing the given link.
    pub fn count(&self, link: u64) -> usize {
        self.counts.get(&link).copied().unwrap_or(0)
    }

    /// The largest per-link count — the bottleneck channel.
    pub fn max_count(&self) -> usize {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Mean count over links that carry any traffic.
    pub fn mean_count(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.values().sum::<usize>() as f64 / self.counts.len() as f64
    }

    /// Max/mean ratio: 1.0 for perfectly balanced (edge-symmetric) load.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_count();
        if mean == 0.0 {
            return 1.0;
        }
        self.max_count() as f64 / mean
    }

    /// Ordered pairs considered.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Iterate `(link id, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts.iter().map(|(&l, &c)| (l, c))
    }
}

/// Link loads of an `n`-node Quarc under uniform all-pairs traffic.
pub fn quarc_loads(n: usize) -> LinkLoads {
    let ring = Ring::new(n);
    let mut counts = HashMap::new();
    for s in ring.nodes() {
        for t in ring.nodes() {
            if s != t {
                for (link, _vc) in quarc_route_channels(&ring, s, t) {
                    *counts.entry(link).or_insert(0) += 1;
                }
            }
        }
    }
    LinkLoads { counts, pairs: n * (n - 1) }
}

/// Link loads of an `n`-node Spidergon under uniform all-pairs traffic.
pub fn spidergon_loads(n: usize) -> LinkLoads {
    let ring = Ring::new(n);
    let mut counts = HashMap::new();
    for s in ring.nodes() {
        for t in ring.nodes() {
            if s != t {
                for (link, _vc) in spidergon_route_channels(&ring, s, t) {
                    *counts.entry(link).or_insert(0) += 1;
                }
            }
        }
    }
    LinkLoads { counts, pairs: n * (n - 1) }
}

/// Link loads of a mesh under uniform all-pairs XY traffic. Link ids encode
/// `node * 4 + out`.
pub fn mesh_loads(topo: &MeshTopology) -> LinkLoads {
    let n = topo.num_nodes();
    let mut counts = HashMap::new();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let (src, dst) = (NodeId::new(s), NodeId::new(t));
            let mut cur = src;
            loop {
                let out = topo.route(cur, dst);
                if out == quarc_core::topology::MeshOut::Eject {
                    break;
                }
                *counts.entry((cur.index() * 4 + out.index()) as u64).or_insert(0) += 1;
                cur = topo.link_target(cur, out).expect("XY stays on mesh");
            }
        }
    }
    LinkLoads { counts, pairs: n * (n - 1) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::vc::{ring_link_id, RingLinkKind};

    #[test]
    fn quarc_is_edge_balanced_on_rims_and_crosses() {
        // Quarc's whole point: vertex AND edge symmetry. All CW rim links
        // carry identical load; both cross links at a node carry identical
        // load too.
        let loads = quarc_loads(16);
        let cw0 = loads.count(ring_link_id(NodeId(0), RingLinkKind::RimCw));
        for node in 0..16u32 {
            assert_eq!(loads.count(ring_link_id(NodeId(node), RingLinkKind::RimCw)), cw0);
        }
        let xr = loads.count(ring_link_id(NodeId(0), RingLinkKind::CrossRight));
        let xl = loads.count(ring_link_id(NodeId(0), RingLinkKind::CrossLeft));
        // The two cross directions serve q and q−1 destinations respectively.
        assert!((xr as i64 - xl as i64).abs() <= 16_i64, "xr={xr} xl={xl}");
    }

    #[test]
    fn spidergon_cross_carries_double() {
        // The Spidergon spoke serves both cross quadrants; Quarc splits them.
        let s = spidergon_loads(16);
        let q = quarc_loads(16);
        let s_cross = s.count(ring_link_id(NodeId(0), RingLinkKind::CrossRight));
        let q_xr = q.count(ring_link_id(NodeId(0), RingLinkKind::CrossRight));
        let q_xl = q.count(ring_link_id(NodeId(0), RingLinkKind::CrossLeft));
        assert_eq!(s_cross, q_xr + q_xl, "spoke load must equal the sum of the split");
        assert!(s_cross > q_xr && s_cross > q_xl);
    }

    #[test]
    fn cross_capacity_doubling_halves_cross_utilisation() {
        // The paper's §2.2 change (i): with the spoke doubled, each physical
        // cross channel carries roughly half the Spidergon spoke's traffic,
        // "improving access to the cross-network nodes".
        for n in [16usize, 32, 64] {
            let s = spidergon_loads(n);
            let q = quarc_loads(n);
            let spoke = s.count(ring_link_id(NodeId(0), RingLinkKind::CrossRight));
            let worst_quarc_cross = q
                .count(ring_link_id(NodeId(0), RingLinkKind::CrossRight))
                .max(q.count(ring_link_id(NodeId(0), RingLinkKind::CrossLeft)));
            assert!(
                (worst_quarc_cross as f64) < 0.6 * spoke as f64,
                "n={n}: quarc cross {worst_quarc_cross} vs spoke {spoke}"
            );
        }
    }

    #[test]
    fn imbalance_metric_sane() {
        for n in [16usize, 32, 64] {
            assert!(spidergon_loads(n).imbalance() >= 1.0);
            assert!(quarc_loads(n).imbalance() >= 1.0);
        }
    }

    #[test]
    fn total_link_traversals_equal_total_hops() {
        // Σ link counts = Σ over pairs of hop count.
        let ring = Ring::new(16);
        let loads = quarc_loads(16);
        let total: usize = loads.iter().map(|(_, c)| c).sum();
        let hops: usize = ring
            .nodes()
            .flat_map(|s| {
                ring.nodes().map(move |t| quarc_core::quadrant::unicast_hops(&ring, s, t))
            })
            .sum();
        assert_eq!(total, hops);
    }

    #[test]
    fn mesh_center_links_busier_than_edges() {
        let topo = MeshTopology::new(4, 4);
        let loads = mesh_loads(&topo);
        // East link out of (0,0) vs east link out of (1,1) — centre is busier
        // under XY routing.
        let edge = loads.count((topo.node_at(0, 0).index() * 4) as u64);
        let centre = loads.count((topo.node_at(1, 1).index() * 4) as u64);
        assert!(centre > edge, "centre {centre} vs edge {edge}");
    }
}
