//! Closed-form mean-latency models.
//!
//! These play the role of the paper's ref. [8] analytical models: an
//! independent prediction the flit-level simulator must agree with at low and
//! moderate load ("The simulator has been verified extensively against
//! analytical models for the Spidergon and mesh topologies employing
//! wormhole routing", §3.2). Root-workspace integration tests assert the
//! agreement.
//!
//! ## Unicast model
//!
//! Uniform traffic at `λ` messages/node/cycle, messages of `M` flits. Every
//! physical channel `l` is an M/G/1 queue with arrival rate
//! `λ·C_l/(n−1)` (where `C_l` counts source/destination pairs routed through
//! `l`) and deterministic service `M`; injection ports likewise (the Quarc
//! splits injection over four quadrant ports, the Spidergon funnels all of it
//! through one — which is exactly why its source waiting explodes first).
//! A pair's latency is
//!
//! ```text
//! L(s,t) = 1 (injection) + d(s,t) (header pipeline) + (M−1) (serialisation)
//!        + W_port(quadrant(s,t)) + Σ_{l ∈ route(s,t)} W_l
//! ```
//!
//! averaged over all pairs from a representative source (the topologies are
//! vertex-symmetric).
//!
//! ## Zero-load broadcast
//!
//! * Quarc (§2.5.2): four parallel streams, slowest travels `n/4` hops:
//!   `1 + n/4 + (M−1)`.
//! * Spidergon (ref. [9] chains, §2.2): the source streams three seed packets
//!   back-to-back through its single port (`3M` cycles for the cross seed to
//!   even leave), then each replication hop costs a full store-and-forward
//!   `M + 2` (hop + serialisation + header rewrite):
//!   `≈ 3M + 2 + (n/4 − 1)(M + 2)`.

use crate::linkload::{mesh_loads, quarc_loads, spidergon_loads, LinkLoads};
use crate::mg1::{mg1_wait, DEFAULT_CV2};
use quarc_core::ids::NodeId;
use quarc_core::quadrant::{quadrant_of, unicast_hops, Quadrant};
use quarc_core::ring::Ring;
use quarc_core::routing::spidergon_hops;
use quarc_core::topology::MeshTopology;
use quarc_core::vc::{quarc_route_channels, spidergon_route_channels};

/// Mean unicast latency of an `n`-node Quarc at rate `lambda` (messages per
/// node per cycle) with `m`-flit messages. `None` above saturation.
pub fn quarc_unicast_latency(n: usize, m: usize, lambda: f64) -> Option<f64> {
    let ring = Ring::new(n);
    let loads = quarc_loads(n);
    let m_f = m as f64;
    let wait = |count: usize| -> Option<f64> {
        let rho = lambda * count as f64 / (n - 1) as f64 * m_f;
        mg1_wait(rho, m_f, DEFAULT_CV2)
    };
    // Per-quadrant injection-port waiting.
    let mut port_wait = [0.0f64; 4];
    for quad in Quadrant::ALL {
        let dests = ring
            .nodes()
            .filter(|&t| t != NodeId(0) && quadrant_of(&ring, NodeId(0), t) == quad)
            .count();
        // The port's arrival rate is the quadrant's share of the node's λ.
        port_wait[quad.index()] = wait(dests)?;
    }
    let src = NodeId(0);
    let mut total = 0.0;
    for t in ring.nodes() {
        if t == src {
            continue;
        }
        let d = unicast_hops(&ring, src, t) as f64;
        let quad = quadrant_of(&ring, src, t);
        let mut l = 1.0 + d + (m_f - 1.0) + port_wait[quad.index()];
        for (link, _vc) in quarc_route_channels(&ring, src, t) {
            l += wait(loads.count(link))?;
        }
        total += l;
    }
    Some(total / (n - 1) as f64)
}

/// Mean unicast latency of an `n`-node Spidergon. `None` above saturation.
pub fn spidergon_unicast_latency(n: usize, m: usize, lambda: f64) -> Option<f64> {
    let ring = Ring::new(n);
    let loads = spidergon_loads(n);
    let m_f = m as f64;
    let wait = |count: usize| -> Option<f64> {
        let rho = lambda * count as f64 / (n - 1) as f64 * m_f;
        mg1_wait(rho, m_f, DEFAULT_CV2)
    };
    // Single injection port carries the node's entire λ.
    let src_wait = mg1_wait(lambda * m_f, m_f, DEFAULT_CV2)?;
    let src = NodeId(0);
    let mut total = 0.0;
    for t in ring.nodes() {
        if t == src {
            continue;
        }
        let d = spidergon_hops(&ring, src, t) as f64;
        let mut l = 1.0 + d + (m_f - 1.0) + src_wait;
        for (link, _vc) in spidergon_route_channels(&ring, src, t) {
            l += wait(loads.count(link))?;
        }
        total += l;
    }
    Some(total / (n - 1) as f64)
}

/// Mean unicast latency of a mesh under XY routing. `None` above saturation.
/// The mesh is not vertex-symmetric, so all sources are averaged.
pub fn mesh_unicast_latency(topo: &MeshTopology, m: usize, lambda: f64) -> Option<f64> {
    let n = topo.num_nodes();
    let loads: LinkLoads = mesh_loads(topo);
    let m_f = m as f64;
    let wait = |count: usize| -> Option<f64> {
        let rho = lambda * count as f64 / (n - 1) as f64 * m_f;
        mg1_wait(rho, m_f, DEFAULT_CV2)
    };
    let src_wait = mg1_wait(lambda * m_f, m_f, DEFAULT_CV2)?;
    let mut total = 0.0;
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let (src, dst) = (NodeId::new(s), NodeId::new(t));
            let d = topo.hops(src, dst) as f64;
            let mut l = 1.0 + d + (m_f - 1.0) + src_wait;
            let mut cur = src;
            loop {
                let out = topo.route(cur, dst);
                if out == quarc_core::topology::MeshOut::Eject {
                    break;
                }
                l += wait(loads.count((cur.index() * 4 + out.index()) as u64))?;
                cur = topo.link_target(cur, out).expect("XY stays on mesh");
            }
            total += l;
        }
    }
    Some(total / (n * (n - 1)) as f64)
}

/// Zero-load Quarc broadcast completion latency.
pub fn quarc_broadcast_zero_load(n: usize, m: usize) -> f64 {
    1.0 + (n as f64 / 4.0) + (m as f64 - 1.0)
}

/// Zero-load Spidergon broadcast completion latency (ref. [9] chain
/// algorithm; see module docs for the derivation).
pub fn spidergon_broadcast_zero_load(n: usize, m: usize) -> f64 {
    let q = n as f64 / 4.0;
    3.0 * m as f64 + 2.0 + (q - 1.0) * (m as f64 + 2.0)
}

/// The offered rate at which the first Quarc resource saturates.
pub fn quarc_saturation_rate(n: usize, m: usize) -> f64 {
    let loads = quarc_loads(n);
    let link_share = loads.max_count() as f64 / (n - 1) as f64;
    // Worst injection port serves n/4 of the n−1 destinations.
    let port_share = (n as f64 / 4.0) / (n - 1) as f64;
    1.0 / (m as f64 * link_share.max(port_share))
}

/// The offered rate at which the first Spidergon resource saturates.
pub fn spidergon_saturation_rate(n: usize, m: usize) -> f64 {
    let loads = spidergon_loads(n);
    let link_share = loads.max_count() as f64 / (n - 1) as f64;
    let port_share = 1.0; // the single port carries everything
    1.0 / (m as f64 * link_share.max(port_share))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_limits_match_hop_formulas() {
        let ring = Ring::new(16);
        let mean_d: f64 = ring
            .nodes()
            .filter(|&t| t != NodeId(0))
            .map(|t| unicast_hops(&ring, NodeId(0), t) as f64)
            .sum::<f64>()
            / 15.0;
        let l = quarc_unicast_latency(16, 8, 1e-9).unwrap();
        assert!((l - (1.0 + mean_d + 7.0)).abs() < 1e-3, "zero-load {l}");
    }

    #[test]
    fn latency_increases_with_rate() {
        let mut prev = 0.0;
        for rate in [0.001, 0.005, 0.01, 0.02] {
            let l = quarc_unicast_latency(16, 8, rate).unwrap();
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn spidergon_latency_at_least_quarc() {
        for rate in [0.001, 0.01, 0.02] {
            let q = quarc_unicast_latency(16, 16, rate).unwrap();
            let s = spidergon_unicast_latency(16, 16, rate).unwrap();
            assert!(s >= q - 1e-9, "rate {rate}: spidergon {s} < quarc {q}");
        }
    }

    #[test]
    fn saturation_bound_shared_by_both_architectures() {
        // Quarc preserves Spidergon's shortest paths, so under uniform
        // unicast the *capacity* bottleneck (the rim links) is identical and
        // the crude saturation bounds coincide. The Quarc advantage the
        // simulator shows near saturation comes from queueing and blocking
        // (single vs quadrant injection ports), not raw link capacity.
        for n in [16usize, 32, 64] {
            for m in [8usize, 16, 32] {
                let q = quarc_saturation_rate(n, m);
                let s = spidergon_saturation_rate(n, m);
                assert!(q >= s - 1e-12, "n={n} m={m}: quarc {q} < spidergon {s}");
                assert!(q < 1.0 && s < 1.0);
            }
        }
    }

    #[test]
    fn spidergon_port_runs_much_hotter_than_quarc_ports() {
        // At equal offered load the single Spidergon port's utilisation is
        // ~4× any Quarc quadrant port's — the root of the factor-2 latency
        // gap before saturation.
        let (n, m, rate) = (16usize, 16usize, 0.04);
        let spi_port_rho = rate * m as f64; // whole λ through one port
        let quarc_worst_share = (n as f64 / 4.0) / (n - 1) as f64;
        let quarc_port_rho = rate * quarc_worst_share * m as f64;
        assert!(spi_port_rho > 3.0 * quarc_port_rho);
        // And that asymmetry shows up in the model's latencies at loads
        // approaching (but below) the shared link-saturation bound ~0.0586.
        let q = quarc_unicast_latency(n, m, rate).unwrap();
        let s = spidergon_unicast_latency(n, m, rate).unwrap();
        assert!(s > q + 5.0, "spidergon {s} vs quarc {q}");
    }

    #[test]
    fn model_unstable_above_saturation() {
        let sat = spidergon_saturation_rate(16, 16);
        assert!(spidergon_unicast_latency(16, 16, sat * 1.05).is_none());
        assert!(spidergon_unicast_latency(16, 16, sat * 0.5).is_some());
    }

    #[test]
    fn broadcast_gap_is_order_of_magnitude_at_64() {
        let q = quarc_broadcast_zero_load(64, 16);
        let s = spidergon_broadcast_zero_load(64, 16);
        assert!(s / q > 8.0, "gap {}", s / q);
        // And still large at the smallest evaluated size.
        let q16 = quarc_broadcast_zero_load(16, 8);
        let s16 = spidergon_broadcast_zero_load(16, 8);
        assert!(s16 / q16 > 3.0);
    }

    #[test]
    fn mesh_model_zero_load() {
        let topo = MeshTopology::new(4, 4);
        let l = mesh_unicast_latency(&topo, 8, 1e-9).unwrap();
        // Mean Manhattan distance over ordered pairs s ≠ t of a 4×4 mesh:
        // E[|dx|+|dy|] = 2.5 including s = t, rescaled by 256/240.
        let mean_d = 2.5 * 256.0 / 240.0;
        let expect = 1.0 + mean_d + 7.0;
        assert!((l - expect).abs() < 1e-3, "{l} vs {expect}");
    }

    #[test]
    fn saturation_decreases_with_message_length() {
        assert!(quarc_saturation_rate(16, 8) > quarc_saturation_rate(16, 16));
        assert!(quarc_saturation_rate(16, 16) > quarc_saturation_rate(16, 32));
    }
}
