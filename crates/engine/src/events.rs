//! A deterministic discrete-event queue.
//!
//! Used for the parts of the simulation that are naturally event-driven
//! (message creation times drawn from an injection process, delayed
//! re-injection of Spidergon chain packets) while the network datapath itself
//! advances cycle by cycle. Events at equal timestamps pop in insertion
//! order (FIFO), so a simulation run is a pure function of its seed.

use crate::clock::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by `(time, sequence)`.
#[derive(Debug)]
struct Entry<T> {
    key: Reverse<(Cycle, u64)>,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((time, seq)), payload });
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Pop the earliest event if its time is `<= now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.peek_time()? <= now {
            let e = self.heap.pop().expect("peeked");
            Some((e.key.0 .0, e.payload))
        } else {
            None
        }
    }

    /// Drain every event due at or before `now`, in timestamp/FIFO order.
    pub fn drain_due(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some((_, payload)) = self.pop_due(now) {
            out.push(payload);
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, "c");
        q.push(1, "a");
        q.push(3, "b");
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.drain_due(10), vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        let order = q.drain_due(7);
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(10, ());
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some((10, ())));
    }

    #[test]
    fn len_tracks_pushes() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1, 1);
        q.push(2, 2);
        assert_eq!(q.len(), 2);
        q.pop_due(5);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(2, "b");
        q.push(1, "a");
        assert_eq!(q.pop_due(5), Some((1, "a")));
        q.push(1, "late-but-after"); // same time as an already-popped event
        assert_eq!(q.pop_due(5), Some((1, "late-but-after")));
        assert_eq!(q.pop_due(5), Some((2, "b")));
    }
}
