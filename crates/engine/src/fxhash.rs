//! An in-tree Fx-style hasher for simulator-internal maps.
//!
//! `std`'s default `SipHash-1-3` is DoS-resistant but costs tens of cycles
//! per lookup — measurable on any per-flit or per-message map of a
//! multi-million-cycle run. Simulator keys are trusted internal identifiers,
//! so this module provides the multiply-fold construction popularised by
//! rustc's `FxHasher` (crates.io is unreachable from the build container,
//! hence in-tree): fold each 8-byte word into the state with a rotate, xor
//! and multiply by a 64-bit constant derived from the golden ratio.
//!
//! Status: the simulator's own hot path no longer hashes at all — the
//! zero-allocation refactor moved `Metrics` onto slot-indexed slabs and
//! per-site counters — so nothing currently depends on this module. It is
//! kept as the designated hasher for any future internal map that cannot be
//! densely indexed; reach for [`FxHashMap`] there, not `std`'s default.
//!
//! Determinism note: the hasher has no random state, but simulation results
//! must never depend on hash iteration order anyway — internal maps must
//! only ever be queried by key, a property the campaign determinism tests
//! pin down end to end.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit fractional part of the golden ratio, the classic Fibonacci-hashing
/// multiplier.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

/// The Fx multiply-fold hasher. Not DoS-resistant; for trusted internal keys
/// only.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche so low output bits (the ones HashMap uses to pick
        // a bucket) depend on every input word.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^ (h >> 29)
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&(7u64, 9u16)), hash_of(&(7u64, 9u16)));
        assert_eq!(hash_of(&"flit"), hash_of(&"flit"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: Vec<u64> = (0u64..1000).map(|k| hash_of(&k)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len(), "collisions on sequential keys");
    }

    #[test]
    fn low_bits_vary_for_sequential_keys() {
        // HashMap buckets use the low bits; sequential ids must spread about
        // as well as a random function (128 balls in 128 bins ≈ 81 distinct).
        let low: std::collections::HashSet<u64> = (0u64..128).map(|k| hash_of(&k) & 0x7F).collect();
        assert!(low.len() > 64, "only {} distinct low-7-bit values", low.len());
    }

    #[test]
    fn map_works_with_tuple_keys() {
        let mut m: FxHashMap<(u64, u16), u32> = FxHashMap::default();
        for i in 0..100u64 {
            m.insert((i, (i % 7) as u16), i as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42, 0)), Some(&42));
        assert_eq!(m.remove(&(13, 6)), Some(13));
        assert_eq!(m.len(), 99);
    }

    #[test]
    fn unaligned_byte_writes_fold_everything() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
