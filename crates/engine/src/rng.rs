//! Deterministic, forkable random number generation.
//!
//! Every stochastic element of a simulation (per-node injection processes,
//! destination choices, traffic-class coin flips) draws from a [`DetRng`]
//! derived from the run's master seed and a stream identifier, so that runs
//! are bit-reproducible and per-node streams are statistically independent of
//! each other regardless of how many draws each one makes.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman &
//! Vigna) seeded through SplitMix64, so the engine has no external
//! dependencies and the bit stream is stable across toolchains — a campaign
//! result cache would be invalidated by any RNG change, so treat the
//! algorithm as frozen.

/// One SplitMix64 whitening step as a public pure mixer: the simulator's
/// fault layer keys per-packet drop decisions on `mix64(salt ^ packet_id)`
/// so a drop is a pure function of `(link, packet)` — independent of the
/// cycle the decision happens to be evaluated on, which is what keeps the
/// active-set scheduler bit-identical to the full-scan oracle under faults.
pub fn mix64(z: u64) -> u64 {
    splitmix64(z)
}

/// SplitMix64 step — used to whiten (seed, stream) pairs and to expand a
/// 64-bit seed into the 256-bit xoshiro state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state, seeded by iterating SplitMix64 (never all-zero).
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A deterministic RNG stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: Xoshiro256,
    seed: u64,
}

impl DetRng {
    /// Master stream for a run.
    pub fn new(seed: u64) -> Self {
        DetRng { inner: Xoshiro256::from_seed(splitmix64(seed)), seed }
    }

    /// An independent stream derived from this RNG's seed and `stream`.
    /// Forking is a pure function of `(seed, stream)` — it does not consume
    /// state from `self` — so components can be created in any order.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mixed = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)));
        DetRng { inner: Xoshiro256::from_seed(mixed), seed: mixed }
    }

    /// A uniformly random `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, bound)` via widening-multiply range reduction.
    /// The bias is below 2⁻³² for any bound a simulation uses. Panics if
    /// `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below needs a positive bound");
        ((self.inner.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform integer in `[0, bound)` excluding `not`; used for uniform
    /// destination selection (a PE never messages itself). Panics if
    /// `bound < 2`.
    #[inline]
    pub fn below_excluding(&mut self, bound: usize, not: usize) -> usize {
        debug_assert!(bound >= 2 && not < bound);
        let v = self.below(bound - 1);
        if v >= not {
            v + 1
        } else {
            v
        }
    }

    /// A geometric inter-arrival gap: the number of *additional* cycles until
    /// the next arrival of a Bernoulli(`rate`) per-cycle process (the
    /// discrete-time analogue of Poisson arrivals used by NoC simulators).
    /// Returns at least 1. For `rate >= 1` every cycle has an arrival.
    pub fn geometric_gap(&mut self, rate: f64) -> u64 {
        if rate >= 1.0 {
            return 1;
        }
        assert!(rate > 0.0, "geometric_gap needs a positive rate");
        let u: f64 = self.unit();
        // Inverse CDF of the geometric distribution on {1, 2, ...}.
        let gap = (1.0 - u).ln() / (1.0 - rate).ln();
        (gap.ceil() as u64).max(1)
    }

    /// A uniformly random `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::new(7);
        let mut f1 = parent.fork(3);
        let parent2 = DetRng::new(7);
        let _ = DetRng::new(7); // unrelated
        let mut f2 = parent2.fork(3);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_streams_differ() {
        let parent = DetRng::new(7);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_excluding_never_returns_excluded() {
        let mut r = DetRng::new(11);
        for not in 0..8 {
            for _ in 0..200 {
                let v = r.below_excluding(8, not);
                assert!(v < 8 && v != not);
            }
        }
    }

    #[test]
    fn below_excluding_is_roughly_uniform() {
        let mut r = DetRng::new(13);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below_excluding(8, 3)] += 1;
        }
        assert_eq!(counts[3], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 3 {
                // Expected ~11428 each; allow ±10%.
                assert!((10_200..12_700).contains(&c), "bucket {i}: {c}");
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn geometric_gap_mean_matches_rate() {
        let mut r = DetRng::new(99);
        let rate = 0.1;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| r.geometric_gap(rate)).sum();
        let mean = total as f64 / n as f64;
        // Mean of geometric on {1,2,...} with success prob 0.1 is 10.
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn geometric_gap_saturates_at_one() {
        let mut r = DetRng::new(1);
        for _ in 0..100 {
            assert_eq!(r.geometric_gap(1.0), 1);
            assert_eq!(r.geometric_gap(2.0), 1);
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = DetRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of U[0,1) over 10k draws: ±0.02 is ~6 sigma.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::new(17);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }
}
