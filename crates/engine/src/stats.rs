//! Online statistics for simulation measurements.
//!
//! Latency samples arrive one packet at a time over millions of cycles, so
//! everything here is single-pass and constant-memory: Welford mean/variance
//! ([`OnlineStats`]), a power-of-two histogram with percentile queries
//! ([`LatencyHistogram`]), and batch-means steady-state estimation
//! ([`BatchMeans`]) used by the load-sweep harness to decide when a point has
//! converged or saturated.

/// Single-pass mean / variance / extrema (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over `u64` values with geometric (power-of-two) buckets:
/// bucket `k` holds values in `[2^(k−1), 2^k)` (bucket 0 holds only zero).
/// Gives ≤ 2× relative error on percentile queries at constant memory, which
/// is ample for latency distribution shape checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 65],
    count: u64,
    total: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 65], count: 0, total: 0 }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.total += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0 < p ≤ 100`). `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket k covers [2^(k−1), 2^k): upper bound 2^k − 1,
                // which for the last bucket (k = 64) is u64::MAX — computed
                // as a right shift because `1u64 << 64` overflows.
                return Some(if k == 0 { 0 } else { u64::MAX >> (64 - k) });
            }
        }
        Some(u64::MAX)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
    }

    /// The raw per-bucket counts (bucket `k` holds `[2^(k−1), 2^k)`).
    ///
    /// Together with [`Self::total`] this is the histogram's entire state,
    /// which lets callers persist a histogram and rebuild it exactly with
    /// [`Self::from_parts`] — the campaign result cache stores per-replication
    /// histograms this way so topped-up merges stay bit-identical.
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// The exact sum of all recorded values.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Rebuild a histogram from persisted state. The value count is the sum
    /// of `buckets`, which is the invariant [`Self::record`] maintains.
    pub fn from_parts(buckets: [u64; 65], total: u128) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram { buckets, count, total }
    }
}

/// Batch-means steady-state estimation: samples are grouped into fixed-size
/// batches; the variance of batch means estimates the Monte-Carlo error of
/// the grand mean far better than the raw sample variance does for the
/// autocorrelated samples a queueing simulation produces.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Accumulator with the given batch size (samples per batch).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans { batch_size, current_sum: 0.0, current_count: 0, batch_means: Vec::new() }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_means.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (`None` until one completes).
    pub fn mean(&self) -> Option<f64> {
        if self.batch_means.is_empty() {
            return None;
        }
        Some(self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64)
    }

    /// Standard error of the grand mean (`None` until two batches complete).
    pub fn std_error(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean().expect("non-empty");
        let var =
            self.batch_means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (k - 1) as f64;
        Some((var / k as f64).sqrt())
    }

    /// Whether the estimate has converged to the requested relative
    /// half-width (e.g. `0.05` for ±5%), with at least `min_batches` batches.
    pub fn converged(&self, rel: f64, min_batches: usize) -> bool {
        if self.batches() < min_batches.max(2) {
            return false;
        }
        let mean = self.mean().expect("non-empty");
        let se = self.std_error().expect(">=2 batches");
        // Student-t at 95% ≈ 2 for the batch counts we use.
        mean.abs() > f64::EPSILON && 2.0 * se / mean.abs() <= rel
    }
}

/// A windowed throughput meter: counts events and reports events/cycle.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    events: u64,
    start: u64,
    end: u64,
}

impl Throughput {
    /// Meter measuring from `start` (cycle).
    pub fn new(start: u64) -> Self {
        Throughput { events: 0, start, end: start }
    }

    /// Record `k` events at cycle `now`.
    pub fn record(&mut self, now: u64, k: u64) {
        self.events += k;
        self.end = self.end.max(now);
    }

    /// Mark the end of the measurement window.
    pub fn close(&mut self, now: u64) {
        self.end = self.end.max(now);
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per cycle over the window (0 for an empty window).
    pub fn per_cycle(&self) -> f64 {
        if self.end <= self.start {
            0.0
        } else {
            self.events as f64 / (self.end - self.start) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 6);
        assert!((s.mean() - 3.5).abs() < 1e-12);
        assert!((s.variance() - 3.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn welford_merge_equals_single_pass() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        let mut a = OnlineStats::new();
        a.merge(&s);
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_brackets_value() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        // True median 500; bucket upper bound must bracket it within 2x.
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p100 = h.percentile(100.0).unwrap();
        assert!(p100 >= 1000);
        assert_eq!(LatencyHistogram::new().percentile(50.0), None);
    }

    #[test]
    fn histogram_zero_goes_to_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.percentile(100.0), Some(0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_roundtrips_through_raw_parts() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 7, 1024, u64::MAX] {
            h.record(v);
        }
        let rebuilt = LatencyHistogram::from_parts(*h.bucket_counts(), h.total());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.percentile(95.0), h.percentile(95.0));
        assert_eq!(LatencyHistogram::from_parts([0; 65], 0), LatencyHistogram::new());
    }

    #[test]
    fn batch_means_converges_on_constant_stream() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..100 {
            bm.push(42.0);
        }
        assert_eq!(bm.batches(), 10);
        assert_eq!(bm.mean(), Some(42.0));
        assert_eq!(bm.std_error(), Some(0.0));
        assert!(bm.converged(0.01, 5));
    }

    #[test]
    fn batch_means_not_converged_early() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 1);
        assert!(!bm.converged(0.5, 2));
        assert!(bm.std_error().is_none());
    }

    #[test]
    fn throughput_rate() {
        let mut t = Throughput::new(100);
        t.record(150, 25);
        t.close(200);
        assert_eq!(t.events(), 25);
        assert!((t.per_cycle() - 0.25).abs() < 1e-12);
        let empty = Throughput::new(10);
        assert_eq!(empty.per_cycle(), 0.0);
    }
}
