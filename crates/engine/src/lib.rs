//! # quarc-engine
//!
//! The deterministic simulation kernel underneath the Quarc NoC flit-level
//! simulator: a cycle [`clock`], a FIFO-tie-broken [`events::EventQueue`],
//! forkable seeded randomness ([`rng::DetRng`]), constant-memory online
//! [`stats`] and a fast non-cryptographic hasher ([`fxhash`]) for
//! simulator-internal maps. Nothing in this crate knows about networks;
//! `quarc-sim` builds the NoC models on top.
//!
//! Determinism contract: given the same master seed and configuration, every
//! simulation built on this kernel produces bit-identical results, because
//! (a) events at equal timestamps pop in insertion order, (b) every random
//! stream is a pure function of `(seed, stream id)`, and (c) the statistics
//! are order-stable accumulators.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod events;
pub mod fxhash;
pub mod rng;
pub mod stats;

pub use clock::{Clock, Cycle};
pub use events::EventQueue;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::{mix64, DetRng};
pub use stats::{BatchMeans, LatencyHistogram, OnlineStats, Throughput};
