//! Simulation time.
//!
//! The flit-level simulator is cycle-driven: every component observes the
//! state of the network as of the start of a cycle and commits its outputs at
//! the end (two-phase update), so a single global counter suffices.

/// A point in simulated time, measured in router clock cycles.
pub type Cycle = u64;

/// The global simulation clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Clock { now: 0 }
    }

    /// The current cycle.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advance by one cycle, returning the new time.
    #[inline]
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advance by `n` cycles.
    #[inline]
    pub fn advance(&mut self, n: Cycle) {
        self.now += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_ticks() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        c.advance(10);
        assert_eq!(c.now(), 12);
    }
}
