//! Property tests for the simulation kernel: ordering of the event queue,
//! statistical correctness of the accumulators, reproducibility of the RNG.

use proptest::prelude::*;
use quarc_engine::stats::{BatchMeans, LatencyHistogram, OnlineStats};
use quarc_engine::{DetRng, EventQueue};

proptest! {
    /// Events always pop in (time, insertion) order regardless of push order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, (t, i));
        }
        let drained = q.drain_due(u64::MAX);
        // Sorted by time; among equal times, by insertion index.
        for w in drained.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
        prop_assert_eq!(drained.len(), times.len());
    }

    /// `pop_due` never returns an event from the future.
    #[test]
    fn pop_due_respects_horizon(times in prop::collection::vec(0u64..1000, 1..100), now in 0u64..1000) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(t, t);
        }
        let due = q.drain_due(now);
        prop_assert!(due.iter().all(|&t| t <= now));
        prop_assert_eq!(due.len() + q.len(), times.len());
    }

    /// Welford mean/variance agree with the two-pass formulas.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// Merging split accumulators equals one-pass accumulation.
    #[test]
    fn welford_merge_is_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len().max(1);
        let mut whole = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < split { left.push(x) } else { right.push(x) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
    }

    /// Histogram percentiles bracket true values within the 2x bucket bound.
    #[test]
    fn histogram_percentile_within_bucket_error(values in prop::collection::vec(1u64..1_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        let est = h.percentile(50.0).unwrap();
        // Bucket upper bound: est is within [true/1, 2*true] roughly.
        prop_assert!(est >= true_median / 2, "est {est} vs median {true_median}");
        prop_assert!(est <= true_median.saturating_mul(2).max(1), "est {est} vs {true_median}");
    }

    /// Same seed → same stream; fork independence from consumption order.
    #[test]
    fn rng_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::new(seed).fork(stream);
        let mut b = DetRng::new(seed).fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Batch-means grand mean equals the plain mean over complete batches.
    #[test]
    fn batch_means_mean_is_exact(xs in prop::collection::vec(0f64..100.0, 10..200)) {
        let batch = 5u64;
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.push(x);
        }
        let complete = (xs.len() / batch as usize) * batch as usize;
        if complete > 0 {
            let plain = xs[..complete].iter().sum::<f64>() / complete as f64;
            prop_assert!((bm.mean().unwrap() - plain).abs() < 1e-9);
        } else {
            prop_assert!(bm.mean().is_none());
        }
    }
}
