//! Co-simulation: the signal-level switch model and the flit-level
//! behavioural simulator must agree on *what* is delivered (the set of
//! receptions and every flit count), even though their cycle timings differ
//! (the RTL model pays handshake stages; the behavioural model idealises
//! them). Both are additionally checked against the pure-core oracle
//! (quadrant/branch planning), so a disagreement pinpoints which layer broke.

use quarc_core::config::NocConfig;
use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_core::quadrant::broadcast_branches;
use quarc_engine::DetRng;
use quarc_rtl::ring::RingRtl;
use quarc_rtl::xcvr::{broadcast_frames, multicast_frames, unicast_frames};
use quarc_sim::driver::NocSim;
use quarc_sim::QuarcNetwork;
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};
use std::collections::BTreeMap;

/// A randomly generated message plan.
#[derive(Debug, Clone)]
enum Msg {
    Unicast { src: NodeId, dst: NodeId, len: usize },
    Broadcast { src: NodeId, len: usize },
    Multicast { src: NodeId, targets: Vec<NodeId>, len: usize },
}

fn random_messages(n: usize, count: usize, seed: u64) -> Vec<Msg> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|_| {
            let src = NodeId::new(rng.below(n));
            let len = 2 + rng.below(7);
            match rng.below(4) {
                0 => Msg::Broadcast { src, len },
                1 => {
                    let k = 1 + rng.below(n - 1);
                    let mut targets = Vec::new();
                    for _ in 0..k {
                        let t = NodeId::new(rng.below_excluding(n, src.index()));
                        if !targets.contains(&t) {
                            targets.push(t);
                        }
                    }
                    Msg::Multicast { src, targets, len }
                }
                _ => {
                    let dst = NodeId::new(rng.below_excluding(n, src.index()));
                    Msg::Unicast { src, dst, len }
                }
            }
        })
        .collect()
}

/// Expected multiset of `(receiver, src, class)` receptions with flit
/// lengths, computed from the pure-core planner (the shared oracle).
fn oracle(n: usize, msgs: &[Msg]) -> BTreeMap<(u32, u32, &'static str), Vec<usize>> {
    let ring = quarc_core::ring::Ring::new(n);
    let mut out: BTreeMap<(u32, u32, &'static str), Vec<usize>> = BTreeMap::new();
    for m in msgs {
        match m {
            Msg::Unicast { src, dst, len } => {
                out.entry((dst.0, src.0, "unicast")).or_default().push(*len);
            }
            Msg::Broadcast { src, len } => {
                for b in broadcast_branches(&ring, *src) {
                    for d in &b.deliveries {
                        out.entry((d.0, src.0, "broadcast")).or_default().push(*len);
                    }
                }
            }
            Msg::Multicast { src, targets, len } => {
                let mut slab = quarc_core::bits::BitSlab::new(ring.quarter() + 1);
                for b in quarc_core::quadrant::multicast_branches(&ring, *src, targets, &mut slab) {
                    for d in &b.deliveries {
                        out.entry((d.0, src.0, "multicast")).or_default().push(*len);
                    }
                }
            }
        }
    }
    for v in out.values_mut() {
        v.sort_unstable();
    }
    out
}

fn class_name(c: TrafficClass) -> &'static str {
    match c {
        TrafficClass::Unicast => "unicast",
        TrafficClass::Broadcast => "broadcast",
        TrafficClass::Multicast => "multicast",
        _ => "chain",
    }
}

/// Run the message set through the RTL ring and collect its receptions.
fn rtl_deliveries(n: usize, msgs: &[Msg]) -> BTreeMap<(u32, u32, &'static str), Vec<usize>> {
    let mut ring = RingRtl::new(n);
    for m in msgs {
        let frames = match m {
            Msg::Unicast { src, dst, len } => unicast_frames(ring.ring(), *src, *dst, *len),
            Msg::Broadcast { src, len } => broadcast_frames(ring.ring(), *src, *len),
            Msg::Multicast { src, targets, len } => {
                multicast_frames(ring.ring(), *src, targets, *len)
            }
        };
        let src = match m {
            Msg::Unicast { src, .. } | Msg::Broadcast { src, .. } | Msg::Multicast { src, .. } => {
                *src
            }
        };
        for (quad, words) in frames {
            assert!(ring.inject(src, quad, &words), "RTL local queue overflow");
        }
    }
    ring.run_until_idle(100_000);
    let mut out: BTreeMap<(u32, u32, &'static str), Vec<usize>> = BTreeMap::new();
    for f in ring.received_frames() {
        out.entry((f.node.0, f.src.0, class_name(f.class))).or_default().push(f.len);
    }
    for v in out.values_mut() {
        v.sort_unstable();
    }
    out
}

/// Run the same messages through the behavioural simulator; return the total
/// flit deliveries and completion counts it observed (its Metrics already
/// enforce the oracle internally via exactly-once assertions).
fn behavioural_flits(n: usize, msgs: &[Msg]) -> u64 {
    let records: Vec<TraceRecord> = msgs
        .iter()
        .map(|m| TraceRecord {
            cycle: 0,
            request: match m {
                Msg::Unicast { src, dst, len } => MessageRequest::unicast(*src, *dst, *len),
                Msg::Broadcast { src, len } => MessageRequest::broadcast(*src, *len),
                Msg::Multicast { src, targets, len } => {
                    MessageRequest::multicast(*src, targets.clone(), *len)
                }
            },
        })
        .collect();
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..200_000 {
        net.step(&mut wl);
        if net.quiesced() {
            break;
        }
    }
    assert!(net.quiesced(), "behavioural network failed to drain");
    net.metrics().flits_delivered()
}

#[test]
fn rtl_matches_oracle_and_behavioural_flit_totals() {
    for (n, count, seed) in [(8usize, 20, 1u64), (16, 40, 2), (16, 60, 3)] {
        let msgs = random_messages(n, count, seed);
        let want = oracle(n, &msgs);
        let got = rtl_deliveries(n, &msgs);
        assert_eq!(got, want, "n={n} seed={seed}: RTL delivery set diverges from oracle");

        let rtl_flits: usize = got.values().flatten().sum();
        let sim_flits = behavioural_flits(n, &msgs);
        assert_eq!(
            rtl_flits as u64, sim_flits,
            "n={n} seed={seed}: flit totals diverge between RTL and simulator"
        );
    }
}

#[test]
fn single_broadcast_same_receivers_both_models() {
    let n = 16;
    let msgs = vec![Msg::Broadcast { src: NodeId(5), len: 6 }];
    let want = oracle(n, &msgs);
    let got = rtl_deliveries(n, &msgs);
    assert_eq!(got, want);
    assert_eq!(behavioural_flits(n, &msgs), (6 * (n - 1)) as u64);
}
