//! The Flow Control Unit (§2.3.2).
//!
//! "First when it receives a request from the VC arbiter, it checks the
//! header flit and sets the crossbar according to the destination address.
//! Second, it sends a request to the corresponding OPC for access. ... If it
//! receives the grant signal, then the FCU stores the switching information
//! till the tail flit of the same packet ... If the FCU receives a body flit
//! then it reads the switching information from the stored table. ... In
//! case of a tail flit, the FCU deletes the corresponding entry in the table
//! as this is the last flit of the same packet."

use crate::signals::NUM_VCS;
use quarc_core::flit::FlitKind;

/// Where the crossbar must steer the current packet: the ingress-mux setting
/// of the Quarc switch. `deliver && forward` is the broadcast clone state
/// (§2.5.2: "setting a flag on the ingress multiplexer which causes it to
/// clone the flits").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutSel {
    /// Local PE takes a copy.
    pub deliver: bool,
    /// Network output port to continue on (None = pure absorption).
    pub forward: Option<usize>,
}

/// A request the FCU raises towards an OPC (or the local sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcuReq {
    /// Which VC lane of this input port the word comes from.
    pub lane: usize,
    /// Crossbar setting for the word's packet.
    pub sel: OutSel,
    /// The 34-bit word itself.
    pub word: u64,
    /// Flit position flags (decoded from the word's type field).
    pub is_header: bool,
    /// Tail flag.
    pub is_tail: bool,
}

/// Decode the flit-type bits of a word.
pub fn word_kind(word: u64) -> FlitKind {
    FlitKind::from_wire_bits(word).expect("reserved flit type on the wire")
}

/// The per-input-port flow control unit: holds the switching table.
#[derive(Debug, Clone, Default)]
pub struct Fcu {
    table: [Option<OutSel>; NUM_VCS],
}

impl Fcu {
    /// An FCU with an empty switching table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored switching info for a lane (None between packets).
    pub fn entry(&self, lane: usize) -> Option<OutSel> {
        self.table[lane]
    }

    /// Combinational: build the request for the granted lane's head word.
    /// `route` resolves a *header* word to its crossbar setting; body/tail
    /// words read the stored table.
    pub fn comb(
        &self,
        granted_lane: Option<usize>,
        head: Option<u64>,
        route: impl FnOnce(u64) -> OutSel,
    ) -> Option<FcuReq> {
        let lane = granted_lane?;
        let word = head?;
        let kind = word_kind(word);
        let sel = match kind {
            // A single-flit packet routes itself like a header and releases
            // the route behind it like a tail.
            FlitKind::Header | FlitKind::Single => {
                debug_assert!(self.table[lane].is_none(), "header while table entry live");
                route(word)
            }
            FlitKind::Body | FlitKind::Tail => {
                self.table[lane].expect("body/tail flit without a switching-table entry")
            }
        };
        Some(FcuReq {
            lane,
            sel,
            word,
            is_header: matches!(kind, FlitKind::Header | FlitKind::Single),
            is_tail: matches!(kind, FlitKind::Tail | FlitKind::Single),
        })
    }

    /// Clock edge, applied only for requests that were actually *granted*
    /// (the flit moved): store on header, delete on tail.
    pub fn commit(&mut self, req: &FcuReq) {
        if req.is_header {
            self.table[req.lane] = Some(req.sel);
        }
        if req.is_tail {
            self.table[req.lane] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_word() -> u64 {
        // Any word with type bits 00 is a header at this layer.
        0b00
    }
    fn body_word() -> u64 {
        0b01
    }
    fn tail_word() -> u64 {
        0b10
    }

    #[test]
    fn header_routes_and_stores() {
        let mut fcu = Fcu::new();
        let sel = OutSel { deliver: false, forward: Some(2) };
        let req = fcu.comb(Some(0), Some(header_word()), |_| sel).unwrap();
        assert!(req.is_header);
        assert_eq!(req.sel, sel);
        fcu.commit(&req);
        assert_eq!(fcu.entry(0), Some(sel));
    }

    #[test]
    fn body_follows_table_tail_clears() {
        let mut fcu = Fcu::new();
        let sel = OutSel { deliver: true, forward: Some(1) };
        let h = fcu.comb(Some(1), Some(header_word()), |_| sel).unwrap();
        fcu.commit(&h);
        let b = fcu.comb(Some(1), Some(body_word()), |_| panic!("body must not re-route")).unwrap();
        assert_eq!(b.sel, sel);
        fcu.commit(&b);
        assert_eq!(fcu.entry(1), Some(sel));
        let t = fcu.comb(Some(1), Some(tail_word()), |_| panic!("tail must not re-route")).unwrap();
        assert!(t.is_tail);
        fcu.commit(&t);
        assert_eq!(fcu.entry(1), None);
    }

    #[test]
    fn no_grant_no_request() {
        let fcu = Fcu::new();
        assert!(fcu.comb(None, Some(header_word()), |_| unreachable!()).is_none());
        assert!(fcu.comb(Some(0), None, |_| unreachable!()).is_none());
    }

    #[test]
    fn lanes_are_independent() {
        let mut fcu = Fcu::new();
        let s0 = OutSel { deliver: false, forward: Some(0) };
        let s1 = OutSel { deliver: true, forward: None };
        let h0 = fcu.comb(Some(0), Some(header_word()), |_| s0).unwrap();
        fcu.commit(&h0);
        let h1 = fcu.comb(Some(1), Some(header_word()), |_| s1).unwrap();
        fcu.commit(&h1);
        assert_eq!(fcu.entry(0), Some(s0));
        assert_eq!(fcu.entry(1), Some(s1));
    }

    #[test]
    #[should_panic(expected = "without a switching-table entry")]
    fn body_without_header_panics() {
        let fcu = Fcu::new();
        fcu.comb(Some(0), Some(body_word()), |_| unreachable!());
    }
}
