//! The transceiver's transmit path (§2.4): frame building and quadrant
//! selection.
//!
//! "When a packet arrives at the transceiver, the write controller divides
//! the packet into a number of flits. The write controller also adds the
//! flit type to the flit. For example, if a flit is of 32-bits, after the
//! write controller adds its type it becomes 34-bits ... The quadrant
//! calculator calculates the quadrant by comparing the source address ...
//! and the destination address."

use quarc_core::bits::{BitSlab, Bits};
use quarc_core::flit::wire::encode;
use quarc_core::flit::{FlitKind, PacketMeta, TrafficClass};
use quarc_core::ids::{MessageId, NodeId, PacketId};
use quarc_core::quadrant::{broadcast_branches, multicast_branches, quadrant_of};
use quarc_core::ring::{Ring, RingDir};

/// Serialise one packet into its 34-bit wire words (header … tail).
/// Body/tail payloads carry the flit sequence number, which the test
/// benches use to check in-order delivery.
pub fn build_frame(
    class: TrafficClass,
    src: NodeId,
    dst: NodeId,
    bitstring: u16,
    len: usize,
) -> Vec<u64> {
    assert!(len >= 2, "a packet has at least header and tail (§2.6)");
    let meta = PacketMeta {
        message: MessageId(0),
        packet: PacketId(0),
        class,
        src,
        dst,
        bitstring: Bits::inline(bitstring as u64),
        dir: RingDir::Cw,
        len: len as u32,
        created_at: 0,
    };
    (0..len)
        .map(|seq| {
            let kind = if seq == 0 {
                FlitKind::Header
            } else if seq + 1 == len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            encode(&meta, kind, seq as u32)
        })
        .collect()
}

/// Frames a transceiver emits for a unicast: one frame, one quadrant.
pub fn unicast_frames(ring: &Ring, src: NodeId, dst: NodeId, len: usize) -> Vec<(usize, Vec<u64>)> {
    let quad = quadrant_of(ring, src, dst);
    vec![(quad.index(), build_frame(TrafficClass::Unicast, src, dst, 0, len))]
}

/// Frames a transceiver emits for a broadcast: one tagged stream per branch
/// with the branch-terminal destination addresses of §2.5.2.
pub fn broadcast_frames(ring: &Ring, src: NodeId, len: usize) -> Vec<(usize, Vec<u64>)> {
    broadcast_branches(ring, src)
        .into_iter()
        .map(|b| (b.quadrant.index(), build_frame(TrafficClass::Broadcast, src, b.dst, 0, len)))
        .collect()
}

/// Frames for a multicast to an explicit target set (§2.5.3).
pub fn multicast_frames(
    ring: &Ring,
    src: NodeId,
    targets: &[NodeId],
    len: usize,
) -> Vec<(usize, Vec<u64>)> {
    // RTL networks are n <= 64, so every planner bitstring stays inline in
    // this scratch slab and fits the 16-bit wire field.
    let mut slab = BitSlab::new(ring.quarter() + 1);
    multicast_branches(ring, src, targets, &mut slab)
        .into_iter()
        .map(|b| {
            (
                b.quadrant.index(),
                build_frame(
                    TrafficClass::Multicast,
                    src,
                    b.dst,
                    u16::try_from(b.bitstring.inline_value())
                        .expect("RTL networks are n <= 64: spans fit 16 bits"),
                    len,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::wire::{decode, WireFlit};

    #[test]
    fn frame_words_decode_in_order() {
        let words = build_frame(TrafficClass::Unicast, NodeId(1), NodeId(5), 0, 4);
        assert_eq!(words.len(), 4);
        match decode(words[0]).unwrap() {
            WireFlit::Header { class, src, dst, .. } => {
                assert_eq!(class, TrafficClass::Unicast);
                assert_eq!(src, NodeId(1));
                assert_eq!(dst, NodeId(5));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(decode(words[1]).unwrap(), WireFlit::Body(1)));
        assert!(matches!(decode(words[2]).unwrap(), WireFlit::Body(2)));
        assert!(matches!(decode(words[3]).unwrap(), WireFlit::Tail(3)));
    }

    #[test]
    fn broadcast_emits_one_frame_per_branch() {
        let ring = Ring::new(16);
        let frames = broadcast_frames(&ring, NodeId(0), 4);
        assert_eq!(frames.len(), 4);
        let quads: std::collections::HashSet<usize> = frames.iter().map(|(q, _)| *q).collect();
        assert_eq!(quads.len(), 4, "one frame per quadrant");
        // Destinations per Fig. 6.
        let mut dsts: Vec<u32> = frames
            .iter()
            .map(|(_, f)| match decode(f[0]).unwrap() {
                WireFlit::Header { dst, .. } => dst.0,
                other => panic!("{other:?}"),
            })
            .collect();
        dsts.sort();
        assert_eq!(dsts, vec![4, 5, 11, 12]);
    }

    #[test]
    fn unicast_frame_picks_quadrant() {
        let ring = Ring::new(16);
        let frames = unicast_frames(&ring, NodeId(0), NodeId(9), 4);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].0, 1, "node 9 from 0 is cross-right (index 1)");
    }

    #[test]
    fn multicast_frames_carry_bitstrings() {
        let ring = Ring::new(16);
        let frames = multicast_frames(&ring, NodeId(0), &[NodeId(2), NodeId(4)], 4);
        assert_eq!(frames.len(), 1);
        match decode(frames[0].1[0]).unwrap() {
            WireFlit::Header { class, bitstring, .. } => {
                assert_eq!(class, TrafficClass::Multicast);
                assert_eq!(bitstring, 0b1010);
            }
            other => panic!("{other:?}"),
        }
    }
}
