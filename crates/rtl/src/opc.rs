//! The Output Port Controller (§2.3.3).
//!
//! "There are four FSMs which govern the scheduler. Out of four, one is the
//! master FSM which handles requests from three different IPCs. It
//! arbitrates between the requests and activates one of the slave FSMs. ...
//! The slave FSM allocates one of the available channels as per the received
//! `ch_status_n` signal from the next node. In case it has to multiplex
//! between more than one IPC then it stores the virtual channel settings in
//! a VC allocation table. ... If it is a header flit then it checks the
//! availability of channels and sets the table with new allocation details.
//! If it is a body type flit, then it reads from the table ... If it is a
//! tail flit ... and then deletes the corresponding entry from the table."
//!
//! Note the Quarc switch has **no output buffer** — the OPC schedules
//! requests straight onto the link ("By not providing any output buffer the
//! area requirement for the router is less").

use crate::signals::{LlRev, NUM_VCS};

/// One requester's bid for the output this cycle. A requester is one
/// *stream* of an input port — its (feeder, source lane) pair — because two
/// lanes of the same IPC carry independent packets that each need their own
/// downstream VC allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcReq {
    /// Source VC lane within the feeder (0 for local queues).
    pub lane: usize,
    /// Header flit (needs a fresh VC allocation).
    pub is_header: bool,
    /// Tail flit (frees its allocation afterwards).
    pub is_tail: bool,
    /// Dateline constraint: rim-link packets must take this exact VC (the
    /// deadlock-avoidance role of the paper's two VCs, §2.1); `None` on
    /// cross links, where the slave FSM allocates any available channel
    /// (§2.3.3).
    pub required_vc: Option<usize>,
}

/// A grant: requester index and the downstream VC the word ships on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpcGrant {
    /// Index into the requester (feeder) list.
    pub req: usize,
    /// Allocated downstream virtual channel.
    pub vc: usize,
}

/// The output port controller: master arbitration + slave VC allocation.
#[derive(Debug, Clone)]
pub struct Opc {
    /// Master FSM rotation pointer (grant_a/b/c fairness).
    rr: usize,
    /// The VC allocation table: downstream VC held per (feeder, lane).
    alloc: Vec<[Option<usize>; NUM_VCS]>,
    /// Which (feeder, lane) owns each downstream VC.
    vc_owner: [Option<(usize, usize)>; NUM_VCS],
}

impl Opc {
    /// An OPC serving `requesters` feeders.
    pub fn new(requesters: usize) -> Self {
        assert!(requesters >= 1);
        Opc { rr: 0, alloc: vec![[None; NUM_VCS]; requesters], vc_owner: [None; NUM_VCS] }
    }

    /// The VC allocation table entry of a (feeder, lane) stream.
    pub fn allocation(&self, req: usize, lane: usize) -> Option<usize> {
        self.alloc[req][lane]
    }

    /// Combinational: pick the winning requester and its VC, honouring the
    /// downstream `ch_status_n`.
    pub fn comb(&self, reqs: &[Option<OpcReq>], rev: &LlRev) -> Option<OpcGrant> {
        debug_assert_eq!(reqs.len(), self.alloc.len());
        let k = reqs.len();
        for i in 0..k {
            let idx = (self.rr + i) % k;
            let Some(r) = reqs[idx] else { continue };
            match self.alloc[idx][r.lane] {
                Some(vc) => {
                    // Continuing packet: follow the table.
                    debug_assert!(!r.is_header, "header while allocation live");
                    if rev.vc_ready(vc) {
                        return Some(OpcGrant { req: idx, vc });
                    }
                }
                None => {
                    debug_assert!(r.is_header, "body/tail without allocation");
                    // Allocate an available channel, honouring any dateline
                    // constraint.
                    let candidate = match r.required_vc {
                        Some(vc) => (self.vc_owner[vc].is_none() && rev.vc_ready(vc)).then_some(vc),
                        None => {
                            (0..NUM_VCS).find(|&vc| self.vc_owner[vc].is_none() && rev.vc_ready(vc))
                        }
                    };
                    if let Some(vc) = candidate {
                        return Some(OpcGrant { req: idx, vc });
                    }
                }
            }
        }
        None
    }

    /// Clock edge: update the allocation table for a granted transfer.
    pub fn commit(&mut self, grant: &OpcGrant, req: &OpcReq) {
        if req.is_header {
            self.alloc[grant.req][req.lane] = Some(grant.vc);
            self.vc_owner[grant.vc] = Some((grant.req, req.lane));
        }
        if req.is_tail {
            self.alloc[grant.req][req.lane] = None;
            self.vc_owner[grant.vc] = None;
        }
        self.rr = (grant.req + 1) % self.alloc.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: OpcReq = OpcReq { lane: 0, is_header: true, is_tail: false, required_vc: None };
    const B: OpcReq = OpcReq { lane: 0, is_header: false, is_tail: false, required_vc: None };
    const T: OpcReq = OpcReq { lane: 0, is_header: false, is_tail: true, required_vc: None };

    #[test]
    fn allocates_free_vc_for_header() {
        let opc = Opc::new(3);
        let g = opc.comb(&[Some(H), None, None], &LlRev::READY).unwrap();
        assert_eq!(g.req, 0);
        assert_eq!(g.vc, 0);
    }

    #[test]
    fn body_follows_allocation_tail_frees() {
        let mut opc = Opc::new(2);
        let g = opc.comb(&[Some(H), None], &LlRev::READY).unwrap();
        opc.commit(&g, &H);
        assert_eq!(opc.allocation(0, 0), Some(0));
        let g2 = opc.comb(&[Some(B), None], &LlRev::READY).unwrap();
        assert_eq!(g2.vc, 0);
        opc.commit(&g2, &B);
        let g3 = opc.comb(&[Some(T), None], &LlRev::READY).unwrap();
        opc.commit(&g3, &T);
        assert_eq!(opc.allocation(0, 0), None);
    }

    #[test]
    fn required_vc_is_honoured() {
        let mut opc = Opc::new(2);
        let h1 = OpcReq { lane: 0, is_header: true, is_tail: false, required_vc: Some(1) };
        let g = opc.comb(&[Some(h1), None], &LlRev::READY).unwrap();
        assert_eq!(g.vc, 1, "dateline constraint must pick VC1");
        opc.commit(&g, &h1);
        // A second packet also requiring VC1 must wait even though VC0 is
        // free.
        let h1b = OpcReq { lane: 1, is_header: true, is_tail: false, required_vc: Some(1) };
        assert_eq!(opc.comb(&[None, Some(h1b)], &LlRev::READY), None);
    }

    #[test]
    fn two_lanes_of_one_feeder_get_distinct_vcs() {
        // The same input port carries packet A on lane 0 and packet B on
        // lane 1; the slave FSM must track two allocations for that feeder.
        let mut opc = Opc::new(1);
        let h0 = OpcReq { lane: 0, is_header: true, is_tail: false, required_vc: None };
        let h1 = OpcReq { lane: 1, is_header: true, is_tail: false, required_vc: None };
        let g0 = opc.comb(&[Some(h0)], &LlRev::READY).unwrap();
        opc.commit(&g0, &h0);
        let g1 = opc.comb(&[Some(h1)], &LlRev::READY).unwrap();
        opc.commit(&g1, &h1);
        assert_ne!(g0.vc, g1.vc);
        assert_eq!(opc.allocation(0, 0), Some(g0.vc));
        assert_eq!(opc.allocation(0, 1), Some(g1.vc));
    }

    #[test]
    fn two_packets_interleave_on_two_vcs() {
        let mut opc = Opc::new(2);
        let g0 = opc.comb(&[Some(H), Some(H)], &LlRev::READY).unwrap();
        opc.commit(&g0, &H);
        // Second requester's header gets the *other* VC next cycle.
        let g1 = opc.comb(&[Some(B), Some(H)], &LlRev::READY).unwrap();
        assert_ne!(g0.req, g1.req, "round-robin must rotate");
        assert_ne!(g0.vc, g1.vc, "second packet must take the free VC");
        opc.commit(&g1, &H);
        // Both now continue, multiplexing the link cycle by cycle.
        let g2 = opc.comb(&[Some(B), Some(B)], &LlRev::READY).unwrap();
        opc.commit(&g2, &B);
        let g3 = opc.comb(&[Some(B), Some(B)], &LlRev::READY).unwrap();
        assert_ne!(g2.req, g3.req);
    }

    #[test]
    fn respects_ch_status_backpressure() {
        let mut opc = Opc::new(1);
        let g = opc.comb(&[Some(H)], &LlRev::READY).unwrap();
        opc.commit(&g, &H);
        // Downstream VC0 stalls: the continuing packet must wait.
        let stalled = LlRev { dst_rdy_n: false, ch_status_n: [true, false] };
        assert_eq!(opc.comb(&[Some(B)], &stalled), None);
        // VC0 ready again: it proceeds.
        assert!(opc.comb(&[Some(B)], &LlRev::READY).is_some());
    }

    #[test]
    fn header_blocked_when_no_vc_free() {
        let mut opc = Opc::new(3);
        for i in 0..2 {
            let mut reqs = [None, None, None];
            reqs[i] = Some(H);
            let g = opc.comb(&reqs, &LlRev::READY).unwrap();
            opc.commit(&g, &H);
        }
        // Both VCs held: a third header cannot start.
        assert_eq!(opc.comb(&[None, None, Some(H)], &LlRev::READY), None);
    }

    #[test]
    fn no_requests_no_grant() {
        let opc = Opc::new(3);
        assert_eq!(opc.comb(&[None, None, None], &LlRev::READY), None);
    }
}
