//! A multi-switch Quarc ring at signal level.
//!
//! Wires `n` [`QuarcSwitchRtl`] instances according to the Quarc topology
//! with one register stage per link (single-cycle link latency, as in the
//! behavioural simulator) and collects every PE delivery. This is the
//! test bench the paper's Verilog implementation would have used: frames go
//! in through transceiver quadrant buffers, words come out at PEs, and the
//! harness checks the LocalLink discipline at every boundary.

use crate::signals::{LlFwd, LlRev};
use crate::switch::{QuarcSwitchRtl, SwitchStepIn};
use quarc_core::flit::wire::{decode, WireFlit};
use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_core::ring::Ring;
use quarc_core::topology::{QuarcOut, QuarcTopology};

/// Network ports in index order.
const NET_OUT: [QuarcOut; 4] =
    [QuarcOut::RimCw, QuarcOut::RimCcw, QuarcOut::CrossRight, QuarcOut::CrossLeft];

/// A word delivered to a PE, with its location in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeDelivery {
    /// Receiving node.
    pub node: NodeId,
    /// Input port it was absorbed from.
    pub port: usize,
    /// VC lane within the port.
    pub lane: usize,
    /// The 34-bit word.
    pub word: u64,
    /// Cycle of delivery.
    pub cycle: u64,
}

/// A fully received frame, reassembled at a PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedFrame {
    /// Receiving node.
    pub node: NodeId,
    /// Traffic class from the header.
    pub class: TrafficClass,
    /// Source address from the header.
    pub src: NodeId,
    /// Header destination (branch terminal for collectives).
    pub dst: NodeId,
    /// Number of words (header + bodies + tail).
    pub len: usize,
    /// Cycle the tail arrived.
    pub completed_at: u64,
}

/// The signal-level ring harness.
#[derive(Debug)]
pub struct RingRtl {
    topo: QuarcTopology,
    switches: Vec<QuarcSwitchRtl>,
    /// Link registers: `fwd_regs[node][out]` holds the word sent last cycle.
    fwd_regs: Vec<[LlFwd; 4]>,
    /// For each `(node, in port)`, the upstream `(node, out)` that feeds it.
    incoming: Vec<[(usize, usize); 4]>,
    deliveries: Vec<PeDelivery>,
    /// Transient receiver faults per `(node, in port)`: the port reports
    /// `CH_STATUS_N` stalled while `from ≤ cycle < until`.
    stalls: Vec<[(u64, u64); 4]>,
    cycle: u64,
}

impl RingRtl {
    /// Build an `n`-node signal-level Quarc.
    pub fn new(n: usize) -> Self {
        let topo = QuarcTopology::new(n);
        let mut incoming = vec![[(usize::MAX, usize::MAX); 4]; n];
        for node in 0..n {
            for (o, out) in NET_OUT.iter().enumerate() {
                let (to, tin) = topo.link_target(NodeId::new(node), *out).expect("net out");
                incoming[to.index()][tin.index()] = (node, o);
            }
        }
        RingRtl {
            topo,
            switches: (0..n).map(|i| QuarcSwitchRtl::new(NodeId::new(i), n)).collect(),
            fwd_regs: vec![[LlFwd::IDLE; 4]; n],
            incoming,
            deliveries: Vec::new(),
            stalls: vec![[(0, 0); 4]; n],
            cycle: 0,
        }
    }

    /// Inject a transient receiver fault: input `port` of `node` deasserts
    /// its `CH_STATUS_N` readiness while `from ≤ cycle < until`. LocalLink
    /// back-pressure must absorb the window with zero loss.
    pub fn inject_stall(&mut self, node: NodeId, port: usize, from: u64, until: u64) {
        assert!(port < 4 && from < until);
        self.stalls[node.index()][port] = (from, until);
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.switches.len()
    }

    /// The ring arithmetic (for building frames).
    pub fn ring(&self) -> &Ring {
        self.topo.ring()
    }

    /// Inject a frame at `node` into quadrant queue `quad`.
    pub fn inject(&mut self, node: NodeId, quad: usize, words: &[u64]) -> bool {
        self.switches[node.index()].inject(quad, words)
    }

    /// Advance one clock cycle across the whole ring.
    // Index loops mirror the hardware port numbering across several arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self) {
        let n = self.num_nodes();
        // Phase 1 (read-only): assemble every switch's inputs from the link
        // registers and the downstream status signals.
        let mut inputs = Vec::with_capacity(n);
        for node in 0..n {
            let mut fwd = [LlFwd::IDLE; 4];
            for port in 0..4 {
                let (up, up_out) = self.incoming[node][port];
                fwd[port] = self.fwd_regs[up][up_out];
            }
            let mut rev = [LlRev::READY; 4];
            for (o, out) in NET_OUT.iter().enumerate() {
                let (to, tin) = self.topo.link_target(NodeId::new(node), *out).expect("net");
                let (from, until) = self.stalls[to.index()][tin.index()];
                rev[o] = if self.cycle >= from && self.cycle < until {
                    LlRev::STALLED
                } else {
                    self.switches[to.index()].ch_status(tin.index())
                };
            }
            inputs.push(SwitchStepIn { fwd, rev });
        }
        // Phase 2: clock every switch, register its outputs.
        for node in 0..n {
            let out = self.switches[node].step(&inputs[node]);
            self.fwd_regs[node] = out.fwd;
            for d in out.deliveries {
                self.deliveries.push(PeDelivery {
                    node: NodeId::new(node),
                    port: d.port,
                    lane: d.lane,
                    word: d.word,
                    cycle: self.cycle,
                });
            }
        }
        self.cycle += 1;
    }

    /// Run until every buffer and link register is empty (or the cycle cap
    /// is hit, which panics — a stuck signal-level network is a bug).
    pub fn run_until_idle(&mut self, cap: u64) {
        for _ in 0..cap {
            self.step();
            if self.is_idle() {
                return;
            }
        }
        panic!("RTL ring did not go idle within {cap} cycles");
    }

    /// Whether all switches and links are empty.
    pub fn is_idle(&self) -> bool {
        self.switches.iter().all(QuarcSwitchRtl::is_idle)
            && self.fwd_regs.iter().all(|regs| regs.iter().all(|f| !f.valid()))
    }

    /// Raw deliveries collected so far.
    pub fn deliveries(&self) -> &[PeDelivery] {
        &self.deliveries
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.cycle
    }

    /// Reassemble the delivered words into frames, checking wormhole
    /// contiguity per `(node, port, lane)` stream.
    pub fn received_frames(&self) -> Vec<ReceivedFrame> {
        use std::collections::HashMap;
        #[derive(Debug)]
        struct Partial {
            class: TrafficClass,
            src: NodeId,
            dst: NodeId,
            words: usize,
        }
        let mut open: HashMap<(u32, usize, usize), Partial> = HashMap::new();
        let mut done = Vec::new();
        for d in &self.deliveries {
            let key = (d.node.0, d.port, d.lane);
            match decode(d.word).expect("valid word on PE interface") {
                WireFlit::Header { class, src, dst, .. } => {
                    let prev = open.insert(key, Partial { class, src, dst, words: 1 });
                    assert!(prev.is_none(), "header interleaved into open frame at {key:?}");
                }
                WireFlit::Body(_) => {
                    open.get_mut(&key).expect("body without header").words += 1;
                }
                WireFlit::Tail(_) => {
                    let mut p = open.remove(&key).expect("tail without header");
                    p.words += 1;
                    done.push(ReceivedFrame {
                        node: d.node,
                        class: p.class,
                        src: p.src,
                        dst: p.dst,
                        len: p.words,
                        completed_at: d.cycle,
                    });
                }
                WireFlit::Single { class, src, dst, .. } => {
                    assert!(!open.contains_key(&key), "single flit interleaved into open frame");
                    done.push(ReceivedFrame {
                        node: d.node,
                        class,
                        src,
                        dst,
                        len: 1,
                        completed_at: d.cycle,
                    });
                }
            }
        }
        assert!(open.is_empty(), "truncated frames at PEs: {open:?}");
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xcvr::{broadcast_frames, multicast_frames, unicast_frames};
    use std::collections::HashSet;

    #[test]
    fn unicast_crosses_the_ring() {
        let mut ring = RingRtl::new(16);
        for (quad, frame) in unicast_frames(ring.ring(), NodeId(0), NodeId(3), 6) {
            assert!(ring.inject(NodeId(0), quad, &frame));
        }
        ring.run_until_idle(200);
        let frames = ring.received_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].node, NodeId(3));
        assert_eq!(frames[0].src, NodeId(0));
        assert_eq!(frames[0].len, 6);
    }

    #[test]
    fn antipodal_unicast_uses_cross_link() {
        let mut ring = RingRtl::new(16);
        for (quad, frame) in unicast_frames(ring.ring(), NodeId(5), NodeId(13), 4) {
            assert_eq!(quad, 1, "antipode is cross-right");
            assert!(ring.inject(NodeId(5), quad, &frame));
        }
        ring.run_until_idle(100);
        let frames = ring.received_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].node, NodeId(13));
    }

    #[test]
    fn broadcast_reaches_every_node_exactly_once() {
        for n in [8usize, 16] {
            let mut ring = RingRtl::new(n);
            for (quad, frame) in broadcast_frames(ring.ring(), NodeId(2), 4) {
                assert!(ring.inject(NodeId(2), quad, &frame));
            }
            ring.run_until_idle(400);
            let frames = ring.received_frames();
            assert_eq!(frames.len(), n - 1, "n={n}");
            let receivers: HashSet<NodeId> = frames.iter().map(|f| f.node).collect();
            assert_eq!(receivers.len(), n - 1, "n={n}: duplicate deliveries");
            assert!(!receivers.contains(&NodeId(2)));
            assert!(frames.iter().all(|f| f.len == 4));
        }
    }

    #[test]
    fn multicast_reaches_exactly_the_targets() {
        let mut ring = RingRtl::new(16);
        let targets = [NodeId(2), NodeId(7), NodeId(8), NodeId(12)];
        for (quad, frame) in multicast_frames(ring.ring(), NodeId(0), &targets, 4) {
            assert!(ring.inject(NodeId(0), quad, &frame));
        }
        ring.run_until_idle(400);
        let receivers: HashSet<NodeId> = ring.received_frames().iter().map(|f| f.node).collect();
        assert_eq!(receivers, targets.iter().copied().collect());
    }

    #[test]
    fn concurrent_broadcasts_from_all_nodes() {
        let n = 8;
        let mut ring = RingRtl::new(n);
        for s in 0..n {
            for (quad, frame) in broadcast_frames(ring.ring(), NodeId::new(s), 3) {
                assert!(ring.inject(NodeId::new(s), quad, &frame));
            }
        }
        ring.run_until_idle(2_000);
        let frames = ring.received_frames();
        assert_eq!(frames.len(), n * (n - 1));
        // Each (src, receiver) pair exactly once.
        let pairs: HashSet<(NodeId, NodeId)> = frames.iter().map(|f| (f.src, f.node)).collect();
        assert_eq!(pairs.len(), n * (n - 1));
    }

    #[test]
    fn broadcast_latency_is_pipeline_not_store_and_forward() {
        // Signal-level check of the paper's headline: completion time stays
        // near q + M, far below the (n−1)-hop chain cost.
        let n = 16;
        let m = 8;
        let mut ring = RingRtl::new(n);
        for (quad, frame) in broadcast_frames(ring.ring(), NodeId(0), m) {
            ring.inject(NodeId(0), quad, &frame);
        }
        ring.run_until_idle(500);
        let last = ring.received_frames().iter().map(|f| f.completed_at).max().unwrap();
        let pipeline_bound = (n as u64 / 4) + m as u64 + 8; // slack for handshake stages
        assert!(
            last <= pipeline_bound,
            "completion {last} exceeds pipeline bound {pipeline_bound}"
        );
    }

    #[test]
    fn stalled_receiver_is_absorbed_losslessly() {
        // A broadcast is in flight while node 2's rim-cw input refuses
        // everything for 40 cycles: LocalLink back-pressure must hold the
        // stream upstream and deliver every word afterwards.
        let mut ring = RingRtl::new(16);
        ring.inject_stall(NodeId(2), 0, 1, 41);
        for (quad, frame) in broadcast_frames(ring.ring(), NodeId(0), 6) {
            assert!(ring.inject(NodeId(0), quad, &frame));
        }
        ring.run_until_idle(1_000);
        let frames = ring.received_frames();
        assert_eq!(frames.len(), 15);
        assert!(frames.iter().all(|f| f.len == 6));
        // Deliveries behind the stalled port completed after the window.
        let at2 = frames.iter().find(|f| f.node == NodeId(2)).unwrap();
        assert!(at2.completed_at >= 41, "node 2 completed during its stall");
    }

    #[test]
    fn stall_on_cross_input_delays_only_that_branch() {
        let mut ring = RingRtl::new(16);
        // Stall the antipode's cross-right input.
        ring.inject_stall(NodeId(8), 2, 1, 61);
        for (quad, frame) in broadcast_frames(ring.ring(), NodeId(0), 4) {
            assert!(ring.inject(NodeId(0), quad, &frame));
        }
        ring.run_until_idle(1_000);
        let frames = ring.received_frames();
        assert_eq!(frames.len(), 15);
        // The rim branches (e.g. node 1) finished long before the stalled
        // cross-right branch (node 9 sits behind the stalled input).
        let rim = frames.iter().find(|f| f.node == NodeId(1)).unwrap();
        let cross = frames.iter().find(|f| f.node == NodeId(9)).unwrap();
        assert!(rim.completed_at < 30, "rim branch was delayed: {}", rim.completed_at);
        assert!(cross.completed_at >= 61, "cross branch ignored the stall");
    }

    #[test]
    fn opposing_unicasts_share_the_ring() {
        let mut ring = RingRtl::new(16);
        for s in 0..16u32 {
            let dst = NodeId((s + 3) % 16);
            for (quad, frame) in unicast_frames(ring.ring(), NodeId(s), dst, 5) {
                assert!(ring.inject(NodeId(s), quad, &frame));
            }
        }
        ring.run_until_idle(1_000);
        assert_eq!(ring.received_frames().len(), 16);
    }
}
