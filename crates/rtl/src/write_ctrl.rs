//! The IPC write controller FSM (§2.3.1).
//!
//! "The Write controller waits for the start-of-frame (`sof_in`) signal and
//! stays in the idle state. Once it receives `sof_in` it goes to write stage
//! and generates the write-enable signal. The write-enable signal is also
//! used with the `ch_to_store` to decide on which channel the flit should be
//! stored. The active low `eof_in` signal indicates end-of-frame ... and the
//! write controller goes back to idle stage again."

use crate::signals::{LlFwd, NUM_VCS};

/// FSM states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcState {
    /// Waiting for a start of frame.
    Idle,
    /// Inside a frame, storing flits.
    Write,
}

/// Combinational outputs of the write controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcOut {
    /// Store the current word this cycle.
    pub write_enable: bool,
    /// Into which VC lane (`ch_to_store`).
    pub lane: usize,
}

/// The write controller. Frame state is tracked **per channel**: the OPC at
/// the far end interleaves two frames on the physical link flit by flit
/// (that is what `CH_TO_STORE` exists for), so each VC's SOF/EOF bracket is
/// independent.
#[derive(Debug, Clone)]
pub struct WriteController {
    state: [WcState; NUM_VCS],
}

impl Default for WriteController {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteController {
    /// A controller with all channel FSMs idle.
    pub fn new() -> Self {
        WriteController { state: [WcState::Idle; NUM_VCS] }
    }

    /// Current state of one channel's FSM (for waveform-style inspection).
    pub fn state(&self, lane: usize) -> WcState {
        self.state[lane]
    }

    /// Combinational: does the current bus cycle store a word, and where?
    pub fn comb(&self, fwd: &LlFwd) -> WcOut {
        let lane = fwd.ch_to_store as usize;
        let in_frame = match self.state[lane] {
            WcState::Idle => fwd.valid() && !fwd.sof_n,
            WcState::Write => fwd.valid(),
        };
        WcOut { write_enable: in_frame, lane }
    }

    /// Clock edge.
    pub fn tick(&mut self, fwd: &LlFwd) {
        if !fwd.valid() {
            return;
        }
        let lane = fwd.ch_to_store as usize;
        self.state[lane] = match self.state[lane] {
            WcState::Idle => {
                if !fwd.sof_n && fwd.eof_n {
                    WcState::Write
                } else {
                    WcState::Idle // single-beat frames return to idle directly
                }
            }
            WcState::Write => {
                if !fwd.eof_n {
                    WcState::Idle
                } else {
                    WcState::Write
                }
            }
        };
    }

    /// The `reset_fsm_w` input.
    pub fn reset(&mut self) {
        self.state = [WcState::Idle; NUM_VCS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_ignores_mid_frame_noise() {
        let wc = WriteController::new();
        // Valid word without SOF while idle: not stored (protocol violation
        // upstream, dropped here).
        let word = LlFwd { sof_n: true, ..LlFwd::beat(5, false, false, 0) };
        assert!(!wc.comb(&word).write_enable);
    }

    #[test]
    fn frame_storing_sequence() {
        let mut wc = WriteController::new();
        let sof = LlFwd::beat(1, true, false, 1);
        let body = LlFwd::beat(2, false, false, 1);
        let eof = LlFwd::beat(3, false, true, 1);

        let o = wc.comb(&sof);
        assert!(o.write_enable);
        assert_eq!(o.lane, 1);
        wc.tick(&sof);
        assert_eq!(wc.state(1), WcState::Write);

        assert!(wc.comb(&body).write_enable);
        wc.tick(&body);
        assert_eq!(wc.state(1), WcState::Write);

        assert!(wc.comb(&eof).write_enable);
        wc.tick(&eof);
        assert_eq!(wc.state(1), WcState::Idle);
    }

    #[test]
    fn gap_cycles_inside_frame_do_not_store() {
        let mut wc = WriteController::new();
        let sof = LlFwd::beat(1, true, false, 0);
        wc.comb(&sof);
        wc.tick(&sof);
        assert!(!wc.comb(&LlFwd::IDLE).write_enable);
        wc.tick(&LlFwd::IDLE);
        assert_eq!(wc.state(0), WcState::Write, "frame stays open across stalls");
    }

    #[test]
    fn interleaved_channel_frames_both_store() {
        // The OPC multiplexes two frames on the link; each channel's
        // SOF/EOF bracket must be honoured independently.
        let mut wc = WriteController::new();
        let beats = [
            LlFwd::beat(10, true, false, 0), // frame A SOF (vc0)
            LlFwd::beat(20, true, false, 1), // frame B SOF (vc1)
            LlFwd::beat(11, false, true, 0), // frame A EOF
            LlFwd::beat(21, false, true, 1), // frame B EOF
        ];
        for b in beats {
            assert!(wc.comb(&b).write_enable, "word {:#x} dropped", b.data);
            wc.tick(&b);
        }
        assert_eq!(wc.state(0), WcState::Idle);
        assert_eq!(wc.state(1), WcState::Idle);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut wc = WriteController::new();
        let sof = LlFwd::beat(1, true, false, 0);
        wc.tick(&sof);
        assert_eq!(wc.state(0), WcState::Write);
        wc.reset();
        assert_eq!(wc.state(0), WcState::Idle);
    }
}
