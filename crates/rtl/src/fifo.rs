//! A synchronous FIFO modelling one input-buffer lane of the IPC (§2.3.1).
//!
//! Two-phase semantics: `empty()`/`full()`/`head()` reflect the state at the
//! start of the cycle (what combinational logic sees); `tick` applies the
//! cycle's push/pop at the clock edge. Pushing into a full FIFO is a protocol
//! violation (the `ch_status_n` back-pressure must prevent it) and panics.

use std::collections::VecDeque;

/// A clocked FIFO of 34-bit flit words.
#[derive(Debug, Clone)]
pub struct SyncFifo {
    q: VecDeque<u64>,
    cap: usize,
}

impl SyncFifo {
    /// FIFO with capacity `cap` words.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        SyncFifo { q: VecDeque::with_capacity(cap), cap }
    }

    /// The `empty` status signal (start-of-cycle view).
    pub fn empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The `full` status signal (drives `CH_STATUS_N`).
    pub fn full(&self) -> bool {
        self.q.len() == self.cap
    }

    /// Word at the read port (valid when `!empty()`).
    pub fn head(&self) -> Option<u64> {
        self.q.front().copied()
    }

    /// Occupancy in words.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the FIFO holds no words.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Clock edge: apply this cycle's write and/or read.
    pub fn tick(&mut self, push: Option<u64>, pop: bool) {
        if pop {
            assert!(!self.q.is_empty(), "pop from empty FIFO");
            self.q.pop_front();
        }
        if let Some(w) = push {
            assert!(self.q.len() < self.cap, "push into full FIFO: CH_STATUS_N ignored");
            self.q.push_back(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_flags() {
        let mut f = SyncFifo::new(2);
        assert!(f.empty() && !f.full());
        f.tick(Some(1), false);
        f.tick(Some(2), false);
        assert!(f.full());
        assert_eq!(f.head(), Some(1));
        f.tick(None, true);
        assert_eq!(f.head(), Some(2));
        f.tick(None, true);
        assert!(f.empty());
    }

    #[test]
    fn simultaneous_push_pop_keeps_occupancy() {
        let mut f = SyncFifo::new(2);
        f.tick(Some(1), false);
        f.tick(Some(2), true); // read 1, write 2
        assert_eq!(f.len(), 1);
        assert_eq!(f.head(), Some(2));
    }

    #[test]
    fn push_pop_same_cycle_when_full_works() {
        // Pop frees the slot before push at the same edge.
        let mut f = SyncFifo::new(1);
        f.tick(Some(7), false);
        f.tick(Some(8), true);
        assert_eq!(f.head(), Some(8));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut f = SyncFifo::new(1);
        f.tick(Some(1), false);
        f.tick(Some(2), false);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn underflow_panics() {
        let mut f = SyncFifo::new(1);
        f.tick(None, true);
    }
}
