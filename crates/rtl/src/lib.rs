//! # quarc-rtl
//!
//! A signal-level ("RTL-style") model of the Quarc switch and transceiver —
//! the Rust counterpart of the paper's Verilog implementation (§2.3–§2.7).
//! Every FSM the paper names is here with its published state set:
//!
//! * [`write_ctrl::WriteController`] — `idle`/`write`, driven by
//!   `SOF_N`/`EOF_N` (§2.3.1);
//! * [`vc_arbiter::VcArbiter`] — `idle`/`grant_0`/`grant_1` with the
//!   `times_up` fairness timer (§2.3.2);
//! * [`fcu::Fcu`] — the switching table keyed by header flits, read by body
//!   flits, cleared by tails (§2.3.2);
//! * [`opc::Opc`] — master grant FSM plus slave VC-allocation table driven
//!   by the downstream `CH_STATUS_N` (§2.3.3), with no output buffering;
//! * [`signals`] — the Xilinx LocalLink bundles of §2.7;
//! * [`switch::QuarcSwitchRtl`] — the composed switch of Fig. 4, including
//!   the broadcast-cloning ingress multiplexer;
//! * [`xcvr`] — the transceiver's frame building + quadrant calculation
//!   (Fig. 5);
//! * [`ring::RingRtl`] — an `n`-switch ring test bench.
//!
//! Words on the wire are the 34-bit format of `quarc_core::flit::wire`, so
//! this crate exercises the paper's packet format end to end. One deliberate
//! difference from the behavioural simulator (`quarc-sim`): the OPC performs
//! the paper's *dynamic* VC allocation, while the simulator uses the
//! restrictive dateline assignment for provable deadlock freedom; the
//! co-simulation tests compare *delivery sets*, which must agree exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fcu;
pub mod fifo;
pub mod opc;
pub mod ring;
pub mod signals;
pub mod switch;
pub mod vc_arbiter;
pub mod vcd;
pub mod write_ctrl;
pub mod xcvr;

pub use ring::{PeDelivery, ReceivedFrame, RingRtl};
pub use signals::{LlFwd, LlRev, NUM_VCS};
pub use switch::{Delivery, QuarcSwitchRtl, SwitchStepIn, SwitchStepOut};
