//! The LocalLink signal bundles (paper §2.7, Fig. 8).
//!
//! The Quarc NoC "uses the signals and handshaking mechanism of Xilinx's
//! LocalLink protocol for the link layer interface". All control signals are
//! active-low (`_n` suffix), exactly as in the paper: a frame transfer is
//! `SOF_N` low on the first word, `EOF_N` low on the last, `SRC_RDY_N`/
//! `DST_RDY_N` low while both sides participate, `CH_STATUS_N[vc]` low when
//! the receiver can accept at least one word on that virtual channel and
//! `CH_TO_STORE` naming the channel the current word belongs to.

/// Number of virtual channels on a link (the paper's 2-channel example).
pub const NUM_VCS: usize = 2;

/// Forward (source → destination) LocalLink signals for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlFwd {
    /// 34-bit flit word (see `quarc_core::flit::wire`).
    pub data: u64,
    /// Start of frame, active low.
    pub sof_n: bool,
    /// End of frame, active low.
    pub eof_n: bool,
    /// Source ready, active low (low = `data` is valid this cycle).
    pub src_rdy_n: bool,
    /// Which VC the current word is for.
    pub ch_to_store: u8,
}

impl LlFwd {
    /// The idle bus: nothing valid, all controls deasserted (high).
    pub const IDLE: LlFwd =
        LlFwd { data: 0, sof_n: true, eof_n: true, src_rdy_n: true, ch_to_store: 0 };

    /// Whether a valid word is being presented this cycle.
    #[inline]
    pub fn valid(&self) -> bool {
        !self.src_rdy_n
    }

    /// Build a valid data beat.
    pub fn beat(data: u64, sof: bool, eof: bool, vc: u8) -> LlFwd {
        LlFwd { data, sof_n: !sof, eof_n: !eof, src_rdy_n: false, ch_to_store: vc }
    }
}

/// Reverse (destination → source) LocalLink signals for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlRev {
    /// Destination ready, active low.
    pub dst_rdy_n: bool,
    /// Per-VC acceptance status, active low (low = channel can accept a
    /// full transfer).
    pub ch_status_n: [bool; NUM_VCS],
}

impl LlRev {
    /// A receiver that can accept anything.
    pub const READY: LlRev = LlRev { dst_rdy_n: false, ch_status_n: [false; NUM_VCS] };

    /// A receiver that can accept nothing.
    pub const STALLED: LlRev = LlRev { dst_rdy_n: true, ch_status_n: [true; NUM_VCS] };

    /// Whether VC `vc` can accept a word.
    #[inline]
    pub fn vc_ready(&self, vc: usize) -> bool {
        !self.dst_rdy_n && !self.ch_status_n[vc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Asserting a constant is this test's whole job.
    #[allow(clippy::assertions_on_constants)]
    fn idle_bus_is_invalid() {
        assert!(!LlFwd::IDLE.valid());
        assert!(LlFwd::IDLE.sof_n && LlFwd::IDLE.eof_n);
    }

    #[test]
    fn beat_sets_active_low_controls() {
        let b = LlFwd::beat(0x3FF, true, false, 1);
        assert!(b.valid());
        assert!(!b.sof_n);
        assert!(b.eof_n);
        assert_eq!(b.ch_to_store, 1);
    }

    #[test]
    fn rev_ready_semantics() {
        assert!(LlRev::READY.vc_ready(0));
        assert!(LlRev::READY.vc_ready(1));
        assert!(!LlRev::STALLED.vc_ready(0));
        let partial = LlRev { dst_rdy_n: false, ch_status_n: [false, true] };
        assert!(partial.vc_ready(0));
        assert!(!partial.vc_ready(1));
    }
}
