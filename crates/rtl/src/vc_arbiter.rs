//! The VC arbiter FSM (§2.3.2).
//!
//! "The FSM for the VC arbiter has three states, namely, idle, grant_0 and
//! grant_1. A timer generates the `times_up` signal to indicate that the
//! wait session is over in case a flit is waiting for the grant signal and
//! another flit has arrived at the other channel of the same input. Using
//! this method of arbitration it is possible to generate equal opportunity
//! between both channels of the same input port."

/// FSM states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaState {
    /// No lane requesting.
    Idle,
    /// Lane 0 holds the grant.
    Grant0,
    /// Lane 1 holds the grant.
    Grant1,
}

/// The per-input-port VC arbiter.
#[derive(Debug, Clone)]
pub struct VcArbiter {
    state: VaState,
    timer: u32,
    timeout: u32,
}

impl VcArbiter {
    /// Arbiter with the given fairness timeout (cycles a lane may hold the
    /// grant while the other lane waits).
    pub fn new(timeout: u32) -> Self {
        assert!(timeout >= 1);
        VcArbiter { state: VaState::Idle, timer: 0, timeout }
    }

    /// Current state.
    pub fn state(&self) -> VaState {
        self.state
    }

    /// Combinational: which lane is granted this cycle, given each lane's
    /// (inverted) `empty` signal.
    pub fn granted(&self, has_flit: [bool; 2]) -> Option<usize> {
        match self.state {
            VaState::Idle => {
                // Activated directly by the empty signals.
                if has_flit[0] {
                    Some(0)
                } else if has_flit[1] {
                    Some(1)
                } else {
                    None
                }
            }
            VaState::Grant0 if has_flit[0] => Some(0),
            VaState::Grant1 if has_flit[1] => Some(1),
            // Granted lane drained: the other lane may proceed immediately.
            VaState::Grant0 => has_flit[1].then_some(1),
            VaState::Grant1 => has_flit[0].then_some(0),
        }
    }

    /// Clock edge. `has_flit` are the lanes' request signals.
    pub fn tick(&mut self, has_flit: [bool; 2]) {
        let next = match self.state {
            VaState::Idle => {
                if has_flit[0] {
                    VaState::Grant0
                } else if has_flit[1] {
                    VaState::Grant1
                } else {
                    VaState::Idle
                }
            }
            VaState::Grant0 => {
                if !has_flit[0] {
                    if has_flit[1] {
                        VaState::Grant1
                    } else {
                        VaState::Idle
                    }
                } else if has_flit[1] && self.timer >= self.timeout {
                    VaState::Grant1 // times_up: multiplex for equal opportunity
                } else {
                    VaState::Grant0
                }
            }
            VaState::Grant1 => {
                if !has_flit[1] {
                    if has_flit[0] {
                        VaState::Grant0
                    } else {
                        VaState::Idle
                    }
                } else if has_flit[0] && self.timer >= self.timeout {
                    VaState::Grant0
                } else {
                    VaState::Grant1
                }
            }
        };
        self.timer = if next == self.state && next != VaState::Idle { self.timer + 1 } else { 0 };
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_until_request() {
        let mut a = VcArbiter::new(4);
        assert_eq!(a.granted([false, false]), None);
        a.tick([false, false]);
        assert_eq!(a.state(), VaState::Idle);
        assert_eq!(a.granted([true, false]), Some(0));
        a.tick([true, false]);
        assert_eq!(a.state(), VaState::Grant0);
    }

    #[test]
    fn lane1_served_when_lane0_empty() {
        let mut a = VcArbiter::new(4);
        a.tick([false, true]);
        assert_eq!(a.state(), VaState::Grant1);
        assert_eq!(a.granted([false, true]), Some(1));
    }

    #[test]
    fn times_up_multiplexes_between_busy_lanes() {
        let mut a = VcArbiter::new(3);
        let mut states = Vec::new();
        for _ in 0..16 {
            a.tick([true, true]);
            states.push(a.state());
        }
        assert!(states.contains(&VaState::Grant0));
        assert!(states.contains(&VaState::Grant1), "timer never rotated the grant: {states:?}");
    }

    #[test]
    fn grant_follows_drain() {
        let mut a = VcArbiter::new(8);
        a.tick([true, false]);
        assert_eq!(a.state(), VaState::Grant0);
        // Lane 0 drains while lane 1 fills: immediate hand-over.
        assert_eq!(a.granted([false, true]), Some(1));
        a.tick([false, true]);
        assert_eq!(a.state(), VaState::Grant1);
    }

    #[test]
    fn returns_to_idle_when_quiet() {
        let mut a = VcArbiter::new(2);
        a.tick([true, false]);
        a.tick([false, false]);
        assert_eq!(a.state(), VaState::Idle);
    }
}
