//! A minimal VCD (Value Change Dump) writer, so the signal-level model's
//! traces can be inspected in standard waveform viewers (GTKWave etc.) the
//! way the paper's Verilog simulation would have been.
//!
//! Only the subset of IEEE 1364 VCD needed for digital traces is emitted:
//! a module scope, `wire` variables of arbitrary width, and per-timestep
//! value changes (deduplicated — unchanged signals are not re-emitted).

use std::fmt::Write as _;

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

#[derive(Debug)]
struct Signal {
    name: String,
    width: u32,
    ident: String,
    last: Option<u64>,
}

/// An in-memory VCD document builder.
#[derive(Debug)]
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    body: String,
    time: Option<u64>,
    headers_done: bool,
}

/// VCD identifier characters (printable ASCII, excluding whitespace).
fn ident_for(index: usize) -> String {
    // Base-94 encoding over '!'..='~'.
    let mut n = index;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// A writer for one module scope.
    pub fn new(module: &str) -> Self {
        VcdWriter {
            module: module.to_string(),
            signals: Vec::new(),
            body: String::new(),
            time: None,
            headers_done: false,
        }
    }

    /// Declare a signal. All declarations must precede the first
    /// [`Self::tick`].
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        assert!(!self.headers_done, "declare signals before the first tick");
        assert!((1..=64).contains(&width));
        let id = SignalId(self.signals.len());
        let ident = ident_for(self.signals.len());
        self.signals.push(Signal { name: name.to_string(), width, ident, last: None });
        id
    }

    /// Begin (or advance to) timestep `t`. Timestamps must be
    /// non-decreasing.
    pub fn tick(&mut self, t: u64) {
        if let Some(prev) = self.time {
            assert!(t >= prev, "time must not go backwards");
            if t == prev {
                return;
            }
        }
        self.headers_done = true;
        self.time = Some(t);
        writeln!(self.body, "#{t}").expect("string write");
    }

    /// Record a value for a signal at the current timestep. Values equal to
    /// the signal's previous value are skipped.
    pub fn change(&mut self, id: SignalId, value: u64) {
        assert!(self.time.is_some(), "call tick() before recording changes");
        let sig = &mut self.signals[id.0];
        debug_assert!(sig.width == 64 || value < (1u64 << sig.width), "value exceeds width");
        if sig.last == Some(value) {
            return;
        }
        sig.last = Some(value);
        if sig.width == 1 {
            writeln!(self.body, "{}{}", value & 1, sig.ident).expect("string write");
        } else {
            writeln!(self.body, "b{value:b} {}", sig.ident).expect("string write");
        }
    }

    /// Render the complete VCD document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, s.ident, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&self.body);
        out
    }
}

/// Trace the LocalLink signals of one switch port pair while the closure
/// drives the switch; returns the VCD text. A convenience for tests and the
/// `rtl_handshake` example.
pub fn trace_link<F>(cycles: u64, mut stimulus: F) -> String
where
    F: FnMut(u64) -> (crate::signals::LlFwd, crate::signals::LlFwd),
{
    let mut vcd = VcdWriter::new("locallink");
    let in_data = vcd.add_signal("in_data", 34);
    let in_sof_n = vcd.add_signal("in_sof_n", 1);
    let in_eof_n = vcd.add_signal("in_eof_n", 1);
    let in_src_rdy_n = vcd.add_signal("in_src_rdy_n", 1);
    let in_vc = vcd.add_signal("in_ch_to_store", 1);
    let out_data = vcd.add_signal("out_data", 34);
    let out_sof_n = vcd.add_signal("out_sof_n", 1);
    let out_eof_n = vcd.add_signal("out_eof_n", 1);
    let out_src_rdy_n = vcd.add_signal("out_src_rdy_n", 1);
    for t in 0..cycles {
        let (fin, fout) = stimulus(t);
        vcd.tick(t);
        vcd.change(in_data, fin.data);
        vcd.change(in_sof_n, fin.sof_n as u64);
        vcd.change(in_eof_n, fin.eof_n as u64);
        vcd.change(in_src_rdy_n, fin.src_rdy_n as u64);
        vcd.change(in_vc, fin.ch_to_store as u64);
        vcd.change(out_data, fout.data);
        vcd.change(out_sof_n, fout.sof_n as u64);
        vcd.change(out_eof_n, fout.eof_n as u64);
        vcd.change(out_src_rdy_n, fout.src_rdy_n as u64);
    }
    vcd.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signals::{LlFwd, LlRev};
    use crate::switch::{QuarcSwitchRtl, SwitchStepIn};
    use crate::xcvr::build_frame;
    use quarc_core::flit::TrafficClass;
    use quarc_core::ids::NodeId;

    #[test]
    fn header_structure() {
        let mut v = VcdWriter::new("m");
        let a = v.add_signal("clk", 1);
        v.tick(0);
        v.change(a, 1);
        let text = v.render();
        assert!(text.starts_with("$timescale 1ns $end\n$scope module m $end\n"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("#0\n1!"));
    }

    #[test]
    fn unchanged_values_deduplicated() {
        let mut v = VcdWriter::new("m");
        let a = v.add_signal("d", 8);
        v.tick(0);
        v.change(a, 5);
        v.tick(1);
        v.change(a, 5); // no emission
        v.tick(2);
        v.change(a, 6);
        let text = v.render();
        assert_eq!(text.matches("b101 ").count(), 1);
        assert_eq!(text.matches("b110 ").count(), 1);
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let mut v = VcdWriter::new("m");
        let ids: Vec<String> = (0..200)
            .map(|i| {
                v.add_signal(&format!("s{i}"), 1);
                ident_for(i)
            })
            .collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), 200);
        assert!(ids.iter().all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }

    #[test]
    #[should_panic(expected = "time must not go backwards")]
    fn time_is_monotone() {
        let mut v = VcdWriter::new("m");
        v.tick(5);
        v.tick(3);
    }

    #[test]
    fn traces_a_real_switch_transfer() {
        // Drive a broadcast stream through node 1 and dump the forward
        // interfaces; the VCD must show SOF/EOF brackets on both sides.
        let mut sw = QuarcSwitchRtl::new(NodeId(1), 16);
        let frame = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(4), 0, 4);
        let text = trace_link(10, |t| {
            let fin = if (t as usize) < 4 {
                LlFwd::beat(frame[t as usize], t == 0, t == 3, 0)
            } else {
                LlFwd::IDLE
            };
            let out = sw.step(&SwitchStepIn {
                fwd: [fin, LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE],
                rev: [LlRev::READY; 4],
            });
            (fin, out.fwd[0])
        });
        // Both interfaces saw an asserted (0) SOF and EOF at some point.
        assert!(text.contains("0\"")); // in_sof_n low (ident '"' is signal 1)
        assert!(text.lines().filter(|l| l.starts_with('#')).count() == 10);
        // Parses as: every non-directive line is a timestamp or change.
        for line in text.lines().filter(|l| !l.starts_with('$') && !l.is_empty()) {
            assert!(
                line.starts_with('#')
                    || line.starts_with('b')
                    || line.starts_with('0')
                    || line.starts_with('1'),
                "unexpected VCD line: {line}"
            );
        }
    }
}
