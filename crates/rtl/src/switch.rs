//! The complete Quarc switch at signal level (paper Fig. 4).
//!
//! Composition per the paper's block diagram: each network input port is an
//! IPC (write controller + two buffer lanes + VC arbiter) feeding an FCU;
//! the four local ingress queues (the transceiver's quadrant buffers) feed
//! dedicated paths; four OPCs schedule the network outputs. There is no
//! output buffering, no routing logic beyond "local or straight on", and the
//! ingress multiplexer clones flits for broadcast — all three of the paper's
//! §2.2 modifications are visible in the wiring.
//!
//! Flow control: `ch_status_n` reports a lane not-ready when fewer than two
//! slots are free, because a word can be committed upstream in the same
//! cycle and another is potentially in the link register (one-cycle status
//! skew); the two-slot reserve makes overflow impossible, and the FIFOs
//! panic if that invariant is ever violated.

use crate::fcu::{word_kind, Fcu, FcuReq, OutSel};
use crate::fifo::SyncFifo;
use crate::opc::{Opc, OpcGrant, OpcReq};
use crate::signals::{LlFwd, LlRev, NUM_VCS};
use crate::vc_arbiter::VcArbiter;
use crate::write_ctrl::WriteController;
use quarc_core::bits::Bits;
use quarc_core::flit::wire::{decode, encode, WireFlit};
use quarc_core::flit::{FlitKind, PacketMeta, TrafficClass};
use quarc_core::ids::{MessageId, NodeId, PacketId, VcId};
use quarc_core::ring::{Ring, RingDir};
use quarc_core::routing::{quarc_route, RouteAction};
use quarc_core::topology::{QuarcIn, QuarcOut, QuarcTopology};
use quarc_core::vc::{vc_after_rim_hop, INJECTION_VC};

/// Network input/output port count.
pub const NET_PORTS: usize = 4;
/// Input-buffer lane depth in words.
pub const LANE_DEPTH: usize = 4;
/// Local quadrant queue capacity in words.
pub const LOCAL_DEPTH: usize = 256;
/// VC-arbiter fairness timeout.
pub const ARB_TIMEOUT: u32 = 4;

/// Network input ports in index order.
const NET_IN: [QuarcIn; 4] =
    [QuarcIn::RimCw, QuarcIn::RimCcw, QuarcIn::CrossRight, QuarcIn::CrossLeft];
/// Network output ports in index order.
const NET_OUT: [QuarcOut; 4] =
    [QuarcOut::RimCw, QuarcOut::RimCcw, QuarcOut::CrossRight, QuarcOut::CrossLeft];

/// A feeder of an output port: a network input or a local quadrant queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feeder {
    Net(usize),
    Local(usize),
}

/// Signals entering the switch this cycle.
#[derive(Debug, Clone, Copy)]
pub struct SwitchStepIn {
    /// Forward bundles arriving on the four network inputs.
    pub fwd: [LlFwd; 4],
    /// Reverse bundles from the four downstream receivers of our outputs.
    pub rev: [LlRev; 4],
}

/// A word absorbed by the local PE this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Network input port it was absorbed from.
    pub port: usize,
    /// VC lane within that port.
    pub lane: usize,
    /// The 34-bit word.
    pub word: u64,
}

/// Signals leaving the switch this cycle.
#[derive(Debug, Clone)]
pub struct SwitchStepOut {
    /// Forward bundles driven onto the four network outputs.
    pub fwd: [LlFwd; 4],
    /// Words absorbed by the local PE (up to one per input port; clones
    /// appear here in the same cycle their twin is forwarded).
    pub deliveries: Vec<Delivery>,
}

/// Resolve a header word to its crossbar setting at `node`.
fn route_word(ring: &Ring, node: NodeId, port: usize, word: u64) -> OutSel {
    let WireFlit::Header { class, dir, bitstring, src, dst } =
        decode(word).expect("valid header word")
    else {
        panic!("route_word called on a non-header word");
    };
    let meta = PacketMeta {
        message: MessageId(0),
        packet: PacketId(0),
        class,
        src,
        dst,
        bitstring: Bits::inline(bitstring as u64),
        dir,
        len: 2,
        created_at: 0,
    };
    match quarc_route(ring, node, NET_IN[port], &meta) {
        RouteAction::Deliver => OutSel { deliver: true, forward: None },
        RouteAction::Forward(out) => OutSel { deliver: false, forward: Some(out.index()) },
        RouteAction::DeliverAndForward(out) => OutSel { deliver: true, forward: Some(out.index()) },
    }
}

/// The dateline VC a packet must take on a rim output (`None` on cross
/// outputs, which are acyclic and use the paper's dynamic allocation).
///
/// Rim lane indices coincide with the packet's dateline class (upstream
/// always sends on the required VC), so the class is the arriving lane for
/// rim inputs and resets to VC0 after a cross hop or at injection.
fn required_vc(ring: &Ring, node: NodeId, out: usize, in_class: VcId) -> Option<usize> {
    match out {
        0 => Some(vc_after_rim_hop(ring, node, RingDir::Cw, in_class).index()),
        1 => Some(vc_after_rim_hop(ring, node, RingDir::Ccw, in_class).index()),
        _ => None,
    }
}

/// Shift a multicast header's bitstring one hop (§2.5.3); other headers pass
/// through unchanged.
pub fn advance_header_word(word: u64) -> u64 {
    match decode(word) {
        Some(WireFlit::Header { class: TrafficClass::Multicast, dir, bitstring, src, dst }) => {
            let meta = PacketMeta {
                message: MessageId(0),
                packet: PacketId(0),
                class: TrafficClass::Multicast,
                src,
                dst,
                bitstring: Bits::inline((bitstring >> 1) as u64),
                dir,
                len: 2,
                created_at: 0,
            };
            encode(&meta, FlitKind::Header, 0)
        }
        _ => word,
    }
}

/// The signal-level Quarc switch.
#[derive(Debug)]
pub struct QuarcSwitchRtl {
    node: NodeId,
    ring: Ring,
    wc: [WriteController; 4],
    lanes: Vec<[SyncFifo; NUM_VCS]>,
    arb: [VcArbiter; 4],
    fcu: [Fcu; 4],
    local_q: [SyncFifo; 4],
    opc: [Opc; 4],
    feeders: Vec<Vec<Feeder>>,
}

impl QuarcSwitchRtl {
    /// A switch for `node` of an `n`-node Quarc.
    pub fn new(node: NodeId, n: usize) -> Self {
        assert!(n >= 4 && n.is_multiple_of(4));
        let feeders = NET_OUT
            .iter()
            .map(|&o| {
                QuarcTopology::feeders(o)
                    .iter()
                    .map(|&f| match f {
                        QuarcIn::Local(q) => Feeder::Local(q.index()),
                        other => Feeder::Net(other.index()),
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        QuarcSwitchRtl {
            node,
            ring: Ring::new(n),
            wc: Default::default(),
            lanes: (0..4).map(|_| [SyncFifo::new(LANE_DEPTH), SyncFifo::new(LANE_DEPTH)]).collect(),
            arb: [
                VcArbiter::new(ARB_TIMEOUT),
                VcArbiter::new(ARB_TIMEOUT),
                VcArbiter::new(ARB_TIMEOUT),
                VcArbiter::new(ARB_TIMEOUT),
            ],
            fcu: Default::default(),
            local_q: [
                SyncFifo::new(LOCAL_DEPTH),
                SyncFifo::new(LOCAL_DEPTH),
                SyncFifo::new(LOCAL_DEPTH),
                SyncFifo::new(LOCAL_DEPTH),
            ],
            opc: feeders.iter().map(|f| Opc::new(f.len())).collect::<Vec<_>>().try_into().unwrap(),
            feeders,
        }
    }

    /// This switch's node address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The `ch_status_n`/`dst_rdy_n` this switch presents on input `port`
    /// (two-slot reserve, see module docs).
    pub fn ch_status(&self, port: usize) -> LlRev {
        let mut ch = [true; NUM_VCS];
        for (vc, lane) in self.lanes[port].iter().enumerate() {
            ch[vc] = LANE_DEPTH - lane.len() < 2;
        }
        LlRev { dst_rdy_n: false, ch_status_n: ch }
    }

    /// Queue a frame's words into a local quadrant buffer (the transceiver
    /// side). Returns `false` (and queues nothing) if the buffer lacks room.
    pub fn inject(&mut self, quad: usize, words: &[u64]) -> bool {
        if LOCAL_DEPTH - self.local_q[quad].len() < words.len() {
            return false;
        }
        for &w in words {
            self.local_q[quad].tick(Some(w), false);
        }
        true
    }

    /// Whether every buffer in the switch is empty.
    pub fn is_idle(&self) -> bool {
        self.lanes.iter().all(|p| p.iter().all(SyncFifo::is_empty))
            && self.local_q.iter().all(SyncFifo::is_empty)
    }

    /// Advance one clock cycle.
    // Index loops mirror the hardware port numbering across several arrays.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self, input: &SwitchStepIn) -> SwitchStepOut {
        // --- combinational phase (start-of-cycle state) ---

        // IPC write side.
        let mut push_plan: [Option<(usize, u64)>; 4] = [None; 4];
        for p in 0..NET_PORTS {
            let wo = self.wc[p].comb(&input.fwd[p]);
            if wo.write_enable {
                push_plan[p] = Some((wo.lane, input.fwd[p].data));
            }
        }

        // Per-port VC arbitration + FCU request.
        let mut has_flit = [[false; NUM_VCS]; 4];
        let mut actions: [Option<FcuReq>; 4] = [None; 4];
        let (ring, node) = (self.ring, self.node);
        for p in 0..NET_PORTS {
            has_flit[p] = [!self.lanes[p][0].empty(), !self.lanes[p][1].empty()];
            let lane = self.arb[p].granted(has_flit[p]);
            let head = lane.and_then(|l| self.lanes[p][l].head());
            actions[p] = self.fcu[p].comb(lane, head, |w| route_word(&ring, node, p, w));
        }

        // OPC arbitration.
        let mut grants: [Option<(OpcGrant, OpcReq, Feeder)>; 4] = [None; 4];
        for o in 0..NET_PORTS {
            let reqs: Vec<Option<OpcReq>> = self.feeders[o]
                .iter()
                .map(|&f| match f {
                    Feeder::Net(p) => actions[p].as_ref().and_then(|r| {
                        // Rim inputs carry their dateline class in the lane
                        // index; cross inputs reset to the injection class.
                        let in_class = if p < 2 { VcId(r.lane as u8) } else { INJECTION_VC };
                        (r.sel.forward == Some(o)).then_some(OpcReq {
                            lane: r.lane,
                            is_header: r.is_header,
                            is_tail: r.is_tail,
                            required_vc: required_vc(&ring, node, o, in_class),
                        })
                    }),
                    Feeder::Local(q) => self.local_q[q].head().map(|w| {
                        let kind = word_kind(w);
                        OpcReq {
                            lane: 0,
                            is_header: matches!(kind, FlitKind::Header | FlitKind::Single),
                            is_tail: matches!(kind, FlitKind::Tail | FlitKind::Single),
                            required_vc: required_vc(&ring, node, o, INJECTION_VC),
                        }
                    }),
                })
                .collect();
            if let Some(grant) = self.opc[o].comb(&reqs, &input.rev[o]) {
                let req = reqs[grant.req].expect("granted requester exists");
                grants[o] = Some((grant, req, self.feeders[o][grant.req]));
            }
        }

        // --- execution phase ---
        let mut out_fwd = [LlFwd::IDLE; 4];
        let mut deliveries = Vec::new();
        let mut pop_net: [Option<usize>; 4] = [None; 4];
        let mut pop_local = [false; 4];

        // Pure absorptions: the all-port router sinks them in parallel.
        for p in 0..NET_PORTS {
            if let Some(r) = &actions[p] {
                if r.sel.forward.is_none() {
                    debug_assert!(r.sel.deliver);
                    deliveries.push(Delivery { port: p, lane: r.lane, word: r.word });
                    pop_net[p] = Some(r.lane);
                    let r = *r;
                    self.fcu[p].commit(&r);
                }
            }
        }

        // Granted forwards.
        for o in 0..NET_PORTS {
            let Some((grant, opc_req, feeder)) = grants[o] else { continue };
            match feeder {
                Feeder::Net(p) => {
                    let r = actions[p].expect("grant implies request");
                    let wire = if r.is_header { advance_header_word(r.word) } else { r.word };
                    out_fwd[o] = LlFwd::beat(wire, r.is_header, r.is_tail, grant.vc as u8);
                    if r.sel.deliver {
                        // Ingress-mux clone: local copy in the same cycle.
                        deliveries.push(Delivery { port: p, lane: r.lane, word: r.word });
                    }
                    pop_net[p] = Some(r.lane);
                    self.fcu[p].commit(&r);
                }
                Feeder::Local(q) => {
                    let w = self.local_q[q].head().expect("grant implies a word");
                    out_fwd[o] = LlFwd::beat(w, opc_req.is_header, opc_req.is_tail, grant.vc as u8);
                    pop_local[q] = true;
                }
            }
            self.opc[o].commit(&grant, &opc_req);
        }

        // --- clock edge ---
        for p in 0..NET_PORTS {
            for l in 0..NUM_VCS {
                let push = push_plan[p].and_then(|(lane, w)| (lane == l).then_some(w));
                let pop = pop_net[p] == Some(l);
                self.lanes[p][l].tick(push, pop);
            }
            self.wc[p].tick(&input.fwd[p]);
            self.arb[p].tick(has_flit[p]);
        }
        for q in 0..4 {
            if pop_local[q] {
                self.local_q[q].tick(None, true);
            }
        }

        SwitchStepOut { fwd: out_fwd, deliveries }
    }
}

#[cfg(test)]
mod tests {
    // `cycle` loops are clocks that outlive the frames they index.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use crate::xcvr::build_frame;

    fn ready_in(fwd: [LlFwd; 4]) -> SwitchStepIn {
        SwitchStepIn { fwd, rev: [LlRev::READY; 4] }
    }

    #[test]
    fn local_unicast_streams_out_the_right_port() {
        // Node 0 of a 16-ring sends to node 2: right quadrant → RimCw out.
        let mut sw = QuarcSwitchRtl::new(NodeId(0), 16);
        let frame = build_frame(TrafficClass::Unicast, NodeId(0), NodeId(2), 0, 4);
        assert!(sw.inject(0, &frame)); // quadrant Right = index 0
        let mut sent = Vec::new();
        for _ in 0..10 {
            let out = sw.step(&ready_in([LlFwd::IDLE; 4]));
            if out.fwd[0].valid() {
                sent.push(out.fwd[0]);
            }
            assert!(!out.fwd[1].valid() && !out.fwd[2].valid() && !out.fwd[3].valid());
        }
        assert_eq!(sent.len(), 4, "all four words leave on rim-cw");
        assert!(!sent[0].sof_n, "first word flagged SOF");
        assert!(!sent[3].eof_n, "last word flagged EOF");
        assert!(sw.is_idle());
    }

    #[test]
    fn arriving_unicast_for_me_is_absorbed() {
        let mut sw = QuarcSwitchRtl::new(NodeId(3), 16);
        let frame = build_frame(TrafficClass::Unicast, NodeId(1), NodeId(3), 0, 3);
        // Drive the frame in on the rim-cw input (port 0), one word per cycle.
        let mut delivered = Vec::new();
        for cycle in 0..12 {
            let fwd0 = if cycle < 3 {
                LlFwd::beat(frame[cycle], cycle == 0, cycle == 2, 0)
            } else {
                LlFwd::IDLE
            };
            let out = sw.step(&ready_in([fwd0, LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE]));
            delivered.extend(out.deliveries);
            for o in 0..4 {
                assert!(!out.fwd[o].valid(), "nothing should be forwarded");
            }
        }
        assert_eq!(delivered.len(), 3);
        assert_eq!(delivered[0].word, frame[0]);
        assert!(sw.is_idle());
    }

    #[test]
    fn broadcast_clones_deliver_and_forward() {
        // A broadcast stream passing through node 1 (dst 4): every word must
        // be both delivered and forwarded on rim-cw.
        let mut sw = QuarcSwitchRtl::new(NodeId(1), 16);
        let frame = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(4), 0, 4);
        let mut delivered = 0;
        let mut forwarded = 0;
        for cycle in 0..14 {
            let fwd0 = if cycle < 4 {
                LlFwd::beat(frame[cycle], cycle == 0, cycle == 3, 0)
            } else {
                LlFwd::IDLE
            };
            let out = sw.step(&ready_in([fwd0, LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE]));
            delivered += out.deliveries.len();
            if out.fwd[0].valid() {
                forwarded += 1;
            }
        }
        assert_eq!(delivered, 4, "local copy of every word");
        assert_eq!(forwarded, 4, "forwarded copy of every word");
        assert!(sw.is_idle());
    }

    #[test]
    fn cross_left_input_transits_without_copy() {
        // Broadcast stream arriving on cross-left at the antipode must be
        // forwarded to rim-ccw with no local delivery (§2.3.2's asymmetry).
        let mut sw = QuarcSwitchRtl::new(NodeId(8), 16);
        let frame = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(5), 0, 3);
        let mut delivered = 0;
        let mut forwarded = 0;
        for cycle in 0..10 {
            let fwd3 = if cycle < 3 {
                LlFwd::beat(frame[cycle], cycle == 0, cycle == 2, 0)
            } else {
                LlFwd::IDLE
            };
            let out = sw.step(&ready_in([LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE, fwd3]));
            delivered += out.deliveries.len();
            if out.fwd[1].valid() {
                forwarded += 1;
            }
        }
        assert_eq!(delivered, 0);
        assert_eq!(forwarded, 3);
    }

    #[test]
    fn backpressure_stalls_output() {
        let mut sw = QuarcSwitchRtl::new(NodeId(0), 16);
        let frame = build_frame(TrafficClass::Unicast, NodeId(0), NodeId(2), 0, 4);
        sw.inject(0, &frame);
        // Downstream cannot accept anything.
        let stalled = SwitchStepIn { fwd: [LlFwd::IDLE; 4], rev: [LlRev::STALLED; 4] };
        for _ in 0..5 {
            let out = sw.step(&stalled);
            assert!(!out.fwd[0].valid(), "must respect ch_status_n");
        }
        // Release: the frame flows.
        let mut words = 0;
        for _ in 0..10 {
            let out = sw.step(&ready_in([LlFwd::IDLE; 4]));
            if out.fwd[0].valid() {
                words += 1;
            }
        }
        assert_eq!(words, 4);
    }

    #[test]
    fn ch_status_reserves_two_slots() {
        let sw = QuarcSwitchRtl::new(NodeId(0), 16);
        let st = sw.ch_status(0);
        assert!(st.vc_ready(0) && st.vc_ready(1), "empty lanes are ready");
    }

    #[test]
    fn multicast_header_bitstring_shifts_on_forward() {
        let h = build_frame(TrafficClass::Multicast, NodeId(0), NodeId(4), 0b1010, 2)[0];
        let shifted = advance_header_word(h);
        match decode(shifted).unwrap() {
            WireFlit::Header { bitstring, .. } => assert_eq!(bitstring, 0b101),
            other => panic!("{other:?}"),
        }
        // Non-multicast headers unchanged.
        let b = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(4), 0, 2)[0];
        assert_eq!(advance_header_word(b), b);
    }
}
